module Metrics = Flames_obs.Metrics

let firings_total =
  Metrics.counter "flames_atms_justification_firings_total"
    ~help:"Justifications re-fired during incremental label propagation"

let label_updates_total =
  Metrics.counter "flames_atms_label_updates_total"
    ~help:"Label entries inserted (new minimal environments or raised degrees)"

(* Gauge of live label environments in the most recently active network:
   the working-set size that makes label propagation blow up. *)
let label_envs_gauge =
  Metrics.gauge "flames_atms_label_envs"
    ~help:"Label environments held by the most recently updated ATMS"

type labelled = { env : Env.t; degree : float }

type target = Consequent of node | Contradiction_target
and just = { jdegree : float; antecedents : node list; target : target }

and node = {
  datum : string;
  assumption_id : int option;
  label : unit Envindex.t;
  mutable consumers : just list;
  mutable is_premise : bool;
}

type t = {
  mutable next_id : int;
  names : (int, string) Hashtbl.t;
  assumptions_by_name : (string, node) Hashtbl.t;
  nodes_by_datum : (string, node) Hashtbl.t;
  mutable all_nodes : node list;
  mutable justs : just list;  (** every installed justification *)
  contra : node;
  db : Nogood.t;
  mutable debug : bool;
  mutable label_entries : int;  (** total label entries across nodes *)
  mutable interrupt : (unit -> bool) option;
  mutable truncated : bool;  (** a propagation stopped at a check-point *)
}

let label_interrupts_total =
  Metrics.counter "flames_atms_label_interrupts_total"
    ~help:"Label propagations stopped early by a budget interrupt"

exception Audit_failure of string list

let fresh_node ?assumption_id datum =
  {
    datum;
    assumption_id;
    label = Envindex.create ();
    consumers = [];
    is_premise = false;
  }

let create () =
  {
    next_id = 0;
    names = Hashtbl.create 64;
    assumptions_by_name = Hashtbl.create 64;
    nodes_by_datum = Hashtbl.create 64;
    all_nodes = [];
    justs = [];
    contra = fresh_node "\xe2\x8a\xa5";
    db = Nogood.create ();
    debug = false;
    label_entries = 0;
    interrupt = None;
    truncated = false;
  }

let set_interrupt t f = t.interrupt <- f
let truncated t = t.truncated

let contradiction t = t.contra
let nogood_db t = t.db
let nogoods t = Nogood.entries t.db
let datum n = n.datum
let assumption_count t = t.next_id

let name t id =
  match Hashtbl.find_opt t.names id with
  | Some s -> s
  | None -> Printf.sprintf "A%d" id

(* An entry subsumes another when its environment is included and its
   degree at least as high — exactly Envindex's degree-dominance order,
   so label insertion is one indexed dominance check plus one indexed
   sweep of the entries the newcomer dominates. *)
let insert_label t n env degree =
  if Envindex.is_dominated n.label env degree then false
  else begin
    let removed = Envindex.remove_dominated n.label env degree in
    Envindex.add n.label env degree ();
    t.label_entries <- t.label_entries + 1 - removed;
    Metrics.gauge_set label_envs_gauge (float_of_int t.label_entries);
    true
  end

let label_entries n =
  Envindex.fold
    (fun (it : _ Envindex.item) acc ->
      { env = it.Envindex.env; degree = it.Envindex.degree } :: acc)
    n.label []

let filter_consistent t entries =
  List.filter (fun e -> not (Nogood.is_nogood t.db e.env)) entries

let assumption t nm =
  if Hashtbl.mem t.assumptions_by_name nm then
    invalid_arg (Printf.sprintf "Atms.assumption: duplicate name %S" nm);
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.add t.names id nm;
  let n = fresh_node ~assumption_id:id ("ok:" ^ nm) in
  ignore (insert_label t n (Env.singleton id) 1.);
  Hashtbl.add t.assumptions_by_name nm n;
  t.all_nodes <- n :: t.all_nodes;
  n

let node t datum =
  match Hashtbl.find_opt t.nodes_by_datum datum with
  | Some n -> n
  | None ->
    let n = fresh_node datum in
    Hashtbl.add t.nodes_by_datum datum n;
    t.all_nodes <- n :: t.all_nodes;
    n

let env_of_assumptions _t ns =
  List.fold_left
    (fun env n ->
      match n.assumption_id with
      | Some id -> Env.add id env
      | None ->
        invalid_arg
          (Printf.sprintf "Atms.env_of_assumptions: %S is not an assumption"
             n.datum))
    Env.empty ns

(* Combine the labels of the antecedents: cartesian product of entries,
   unioning environments and min-combining degrees with the clause
   degree. *)
let fire_environments jd antecedents =
  let seed = [ { env = Env.empty; degree = jd } ] in
  List.fold_left
    (fun acc n ->
      let entries = label_entries n in
      List.concat_map
        (fun partial ->
          List.map
            (fun entry ->
              {
                env = Env.union partial.env entry.env;
                degree = Float.min partial.degree entry.degree;
              })
            entries)
        acc)
    seed antecedents

let sweep_hard_nogoods t =
  List.iter
    (fun n ->
      let removed =
        Envindex.filter n.label (fun it ->
            not (Nogood.is_nogood t.db it.Envindex.env))
      in
      t.label_entries <- t.label_entries - removed)
    t.all_nodes;
  Metrics.gauge_set label_envs_gauge (float_of_int t.label_entries)

(* Incremental propagation with a work queue of justifications whose
   antecedent labels changed.  Termination: label entries only improve
   (new minimal environments or higher degrees over a finite space).
   The interrupt hook is polled once per firing: labels reached so far
   stay sound (every entry was genuinely derived); stopping early only
   costs completeness, recorded in [truncated]. *)
let rec propagate t queue =
  match Queue.take_opt queue with
  | None -> ()
  | Some _
    when (match t.interrupt with Some f -> f () | None -> false) ->
    t.truncated <- true;
    Metrics.incr label_interrupts_total;
    Queue.clear queue
  | Some j ->
    Metrics.incr firings_total;
    let fired = fire_environments j.jdegree j.antecedents in
    let fired = filter_consistent t fired in
    (match j.target with
    | Contradiction_target ->
      let recorded =
        List.fold_left
          (fun changed e ->
            let r = Nogood.record t.db ~reason:"justified ⊥" e.env e.degree in
            changed || r)
          false fired
      in
      if recorded then begin
        sweep_hard_nogoods t;
        (* environments may have vanished: downstream labels are already
           filtered; no requeue needed since labels only shrank *)
        ()
      end
    | Consequent target ->
      let changed =
        List.fold_left
          (fun changed e ->
            let inserted = insert_label t target e.env e.degree in
            if inserted then Metrics.incr label_updates_total;
            changed || inserted)
          false fired
      in
      if changed then
        List.iter (fun consumer -> Queue.add consumer queue) target.consumers);
    propagate t queue

(* {1 Label audit}

   Re-derives every node's label from the recorded justifications and
   checks the ATMS label laws at quiescence.  Used by the verification
   layer ([Flames_check.Invariant]) and, in debug mode, after every
   [justify]/[premise] call. *)

let label_of t n =
  let entries = filter_consistent t (label_entries n) in
  List.sort
    (fun a b ->
      let c = Float.compare b.degree a.degree in
      if c <> 0 then c else Env.compare a.env b.env)
    entries

let audit_eps = 1e-9

let fired_effective t n =
  let from_justs =
    List.concat_map
      (fun j ->
        match j.target with
        | Consequent target when target == n ->
          filter_consistent t (fire_environments j.jdegree j.antecedents)
        | Consequent _ | Contradiction_target -> [])
      t.justs
  in
  let seeds =
    (if n.is_premise then [ { env = Env.empty; degree = 1. } ] else [])
    @
    match n.assumption_id with
    | Some id -> [ { env = Env.singleton id; degree = 1. } ]
    | None -> []
  in
  filter_consistent t seeds @ from_justs

let subsumed_in entries e =
  List.exists
    (fun f -> Env.subset f.env e.env && f.degree +. audit_eps >= e.degree)
    entries

let audit t =
  let out = ref [] in
  let report fmt = Format.kasprintf (fun m -> out := m :: !out) fmt in
  let pp_env ppf env = Env.pp ~names:(name t) ppf env in
  let check_node n =
    let entries = label_of t n in
    (* raw label stays swept of hard nogoods *)
    List.iter
      (fun e ->
        if Nogood.is_nogood t.db e.env then
          report "%s: label retains hard nogood %a" n.datum pp_env e.env)
      (label_entries n);
    List.iteri
      (fun i e ->
        if not (e.degree > 0. && e.degree <= 1.) then
          report "%s: entry %a has degree %g outside (0, 1]" n.datum pp_env
            e.env e.degree;
        if
          List.exists (fun a -> a < 0 || a >= t.next_id) (Env.to_list e.env)
        then
          report "%s: entry %a mentions an unknown assumption id" n.datum
            pp_env e.env;
        (* minimality: no other entry subsumes this one *)
        List.iteri
          (fun k f ->
            if k <> i && Env.subset f.env e.env && f.degree >= e.degree then
              report "%s: entry %a@%g subsumed by %a@%g (label not minimal)"
                n.datum pp_env e.env e.degree pp_env f.env f.degree)
          entries)
      entries;
    let fired = fired_effective t n in
    (* soundness: every label entry is derivable from a justification or
       a premise/assumption seed *)
    List.iter
      (fun e ->
        if not (subsumed_in fired e) then
          report "%s: entry %a@%g is not derivable (unsound)" n.datum pp_env
            e.env e.degree)
      entries;
    (* completeness at quiescence: every derivable environment is covered
       by the label *)
    List.iter
      (fun f ->
        if not (subsumed_in entries f) then
          report "%s: derivable %a@%g missing from the label (incomplete)"
            n.datum pp_env f.env f.degree)
      fired
  in
  List.iter check_node t.all_nodes;
  if not (Envindex.is_empty t.contra.label) then
    report "contradiction node carries a non-empty label";
  List.rev !out

let self_check t =
  match audit t with [] -> () | vs -> raise (Audit_failure vs)

let set_debug t flag =
  t.debug <- flag;
  if flag then self_check t

let debug t = t.debug

let install t j =
  t.justs <- j :: t.justs;
  List.iter (fun a -> a.consumers <- j :: a.consumers) j.antecedents;
  let queue = Queue.create () in
  Queue.add j queue;
  propagate t queue;
  if t.debug then self_check t

let justify t ?(degree = 1.) ~antecedents consequent =
  let degree = Flames_fuzzy.Tnorm.clamp01 degree in
  let target =
    if consequent == t.contra then Contradiction_target
    else Consequent consequent
  in
  install t { jdegree = degree; antecedents; target }

let justify_disjunction t ?(degree = 1.) ~antecedents disjuncts =
  match disjuncts with
  | [] -> invalid_arg "Atms.justify_disjunction: empty disjunction"
  | _ ->
    let k = float_of_int (List.length disjuncts) in
    let d = Flames_fuzzy.Tnorm.clamp01 degree /. k in
    List.iter (fun n -> justify t ~degree:d ~antecedents n) disjuncts

let premise t n =
  n.is_premise <- true;
  let inserted = insert_label t n Env.empty 1. in
  if inserted then begin
    Metrics.incr label_updates_total;
    let queue = Queue.create () in
    List.iter (fun j -> Queue.add j queue) n.consumers;
    propagate t queue
  end;
  if t.debug then self_check t

let label = label_of

let holds_in t n env =
  List.fold_left
    (fun acc e ->
      if Env.subset e.env env then
        let soft = 1. -. Nogood.inconsistency t.db env in
        Float.max acc (Float.min e.degree soft)
      else acc)
    0. (label t n)

let is_in t n env = holds_in t n env > 0.
let consistent t env = not (Nogood.is_nogood t.db env)

let pp_node t ppf n =
  Format.fprintf ppf "%s: " n.datum;
  match label t n with
  | [] -> Format.pp_print_string ppf "(out)"
  | entries ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf e ->
        Format.fprintf ppf "%a@@%.2g" (Env.pp ~names:(name t)) e.env e.degree)
      ppf entries
