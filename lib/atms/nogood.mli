(** Weighted nogood database (fuzzy ATMS extension, paper section 6.1.2).

    A nogood is an assumption environment known to be inconsistent with
    some degree in (0, 1]: a hard conflict (disjoint measured and nominal
    values) yields degree 1, a partial conflict yields [1 - Dc].

    Subsumption: a nogood [N@d] makes any superset environment inconsistent
    with at least degree [d], so a recorded nogood is dropped when a subset
    with an equal-or-higher degree already exists, and conversely recording
    a stronger subset discards weaker supersets. *)

type entry = { env : Env.t; degree : float; reason : string }

type t
(** Mutable database. *)

val create : unit -> t

val record : t -> ?reason:string -> Env.t -> float -> bool
(** [record db env degree] inserts the nogood; returns [false] when it was
    subsumed by an existing entry (subset with >= degree).  Degrees are
    clamped into [0, 1]; a degree of 0 is ignored and returns [false].
    The empty environment may be recorded (premises inconsistent) and
    subsumes everything. *)

val entries : t -> entry list
(** Current minimal entries, sorted by decreasing degree, then by
    environment cardinality, then canonically by environment — the view
    is a pure function of the recorded set, independent of discovery
    order (so incremental and batch propagation read identically). *)

val inconsistency : t -> Env.t -> float
(** [inconsistency db env] is the highest degree of any recorded nogood
    included in [env]; 0 when [env] is consistent with everything known. *)

val is_nogood : t -> ?threshold:float -> Env.t -> bool
(** [is_nogood db env] holds when [inconsistency db env >= threshold]
    (default threshold [1.], i.e. classical hard nogoods only). *)

val count : t -> int
val clear : t -> unit
val pp : names:(int -> string) -> Format.formatter -> t -> unit
