(** Indexed subsumption store over weighted environments.

    The store holds [(env, degree, payload)] items and answers the two
    subsumption queries that dominate the fuzzy-ATMS hot paths — "is this
    (env, degree) dominated by a stored item?" and "which stored items
    does it dominate?" — without scanning the whole population.  Items
    are bucketed by {!Env.cardinal}; each bucket carries the OR of its
    members' {!Env.signature} Bloom words, so queries restrict to the
    feasible cardinality range and refute non-candidate buckets with one
    word test.

    Dominance is the fuzzy degree-dominance order used by ATMS labels and
    weighted nogoods: [(e, d)] dominates [(e', d')] when [Env.subset e e']
    and [d >= d'].  The degree comparison is what keeps the index correct
    for fuzzy labels: a smaller environment only supersedes a larger one
    when its degree is at least as high. *)

type 'a item = { env : Env.t; degree : float; data : 'a; seq : int }
(** [seq] is the store-local insertion number (monotonically increasing),
    for callers that must reproduce insertion-order tie-breaking. *)

type 'a t
(** Mutable store with ['a] payloads. *)

val create : unit -> 'a t
val size : 'a t -> int
(** O(1). *)

val is_empty : 'a t -> bool

val add : 'a t -> Env.t -> float -> 'a -> unit
(** Unconditional insert (no dominance checks — callers combine
    {!is_dominated} / {!remove_dominated} as their semantics require). *)

val is_dominated : 'a t -> Env.t -> float -> bool
(** [is_dominated t env degree] holds when some stored [(e, d)] has
    [Env.subset e env] and [d >= degree]. *)

val max_subset_degree : ?stop_at:float -> 'a t -> Env.t -> float
(** Highest degree of any stored item whose environment is included in
    the query (0 when none).  Scanning stops as soon as [stop_at] is
    reached — pass [~stop_at:1.] when degrees are clamped to [0, 1]. *)

val remove_dominated : 'a t -> Env.t -> float -> int
(** [remove_dominated t env degree] deletes every stored [(e, d)] with
    [Env.subset env e] and [degree >= d]; returns the number removed. *)

val iter : ('a item -> unit) -> 'a t -> unit
(** Ascending cardinality, newest-first within a bucket. *)

val fold : ('a item -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val to_list : 'a t -> 'a item list

val filter : 'a t -> ('a item -> bool) -> int
(** Keep only items satisfying the predicate; returns how many were
    dropped. *)

val clear : 'a t -> unit
