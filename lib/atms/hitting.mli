(** Minimal hitting sets.

    Diagnosis candidates are the minimal hitting sets of the family of
    minimal conflicts (Reiter 1987, used by GDE and the paper's section 6).
    The implementation is a breadth-first HS-tree expansion with
    subset-minimality pruning, adequate for the conflict families produced
    by circuit diagnosis (tens of conflicts over tens of assumptions). *)

val minimal_hitting_sets :
  ?limit:int -> ?presort:bool -> ?interrupt:(unit -> bool) -> Env.t list ->
  Env.t list
(** [minimal_hitting_sets conflicts] enumerates all subset-minimal
    environments intersecting every conflict.

    - The empty conflict family has the single hitting set [Env.empty].
    - A family containing the empty conflict has no hitting set: [[]].
    - [limit] caps the number of returned sets (default 10_000), a guard
      against pathological families.
    - [presort] (default [true]) expands conflicts in ascending
      cardinality order via {!expansion_order}, so small conflicts force
      choices early and the completed-set subsumption prune discards more
      of the frontier.  The result is the same either way; the flag
      exists for benchmarks and the prune regression test.
    - [interrupt] is a cooperative budget check-point, polled once per
      frontier pop: when it answers [true] the enumeration stops and the
      sets completed so far are returned.  It is only honoured once at
      least one set has completed, so a tripped budget still yields a
      candidate whenever any hitting set exists.  Because expansion is
      breadth-first, every returned set is a genuine minimal hitting set
      even when enumeration stops early — truncation loses completeness,
      never soundness.

    Results are sorted by cardinality then lexicographically. *)

val enumerate :
  ?limit:int -> ?presort:bool -> ?interrupt:(unit -> bool) -> Env.t list ->
  Env.t list * bool
(** As {!minimal_hitting_sets}, also reporting whether enumeration was
    truncated (by [interrupt] or [limit]) before the frontier drained. *)

val expansion_order : Env.t list -> Env.t list
(** Deduplicated conflicts in the order the expansion visits them:
    ascending cardinality, ties in [Env.compare] order. *)

val hits_all : Env.t -> Env.t list -> bool
(** [hits_all candidate conflicts] checks the defining property. *)
