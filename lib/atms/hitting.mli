(** Minimal hitting sets.

    Diagnosis candidates are the minimal hitting sets of the family of
    minimal conflicts (Reiter 1987, used by GDE and the paper's section 6).
    The implementation is a breadth-first HS-tree expansion with
    subset-minimality pruning, adequate for the conflict families produced
    by circuit diagnosis (tens of conflicts over tens of assumptions). *)

val minimal_hitting_sets :
  ?limit:int -> ?presort:bool -> Env.t list -> Env.t list
(** [minimal_hitting_sets conflicts] enumerates all subset-minimal
    environments intersecting every conflict.

    - The empty conflict family has the single hitting set [Env.empty].
    - A family containing the empty conflict has no hitting set: [[]].
    - [limit] caps the number of returned sets (default 10_000), a guard
      against pathological families.
    - [presort] (default [true]) expands conflicts in ascending
      cardinality order via {!expansion_order}, so small conflicts force
      choices early and the completed-set subsumption prune discards more
      of the frontier.  The result is the same either way; the flag
      exists for benchmarks and the prune regression test.

    Results are sorted by cardinality then lexicographically. *)

val expansion_order : Env.t list -> Env.t list
(** Deduplicated conflicts in the order the expansion visits them:
    ascending cardinality, ties in [Env.compare] order. *)

val hits_all : Env.t -> Env.t list -> bool
(** [hits_all candidate conflicts] checks the defining property. *)
