(* Indexed subsumption store over weighted environments.

   Items are bucketed by environment cardinality; every bucket keeps the
   OR of its members' {!Env.signature} Bloom words.  Subsumption queries
   then restrict themselves to the cardinality range that can possibly
   contain an answer and refute whole buckets (or single items) with one
   word test before paying for a real [Env.subset]:

   - a subset of [env] lives in a bucket of cardinality <= |env| whose
     members share at least one signature bit with [env] (for nonempty
     members);
   - a superset of [env] lives in a bucket of cardinality >= |env| whose
     signature union covers [env]'s signature.

   Degree handling follows the fuzzy dominance order used by labels and
   nogoods alike: [(e, d)] dominates [(e', d')] when [Env.subset e e'] and
   [d >= d'].  Stores parameterised by a ['a] payload carry whatever the
   call site needs alongside (a nogood reason, unit for labels). *)

let bucket_skips_total =
  Flames_obs.Metrics.counter "flames_atms_envindex_bucket_skips_total"
    ~help:"Whole index buckets skipped by the signature word during subsumption queries"

type 'a item = { env : Env.t; degree : float; data : 'a; seq : int }

type 'a bucket = {
  mutable sig_union : int;  (** OR of member signatures (may be stale-high) *)
  mutable items : 'a item list;  (** newest first *)
  mutable n : int;
}

type 'a t = {
  mutable buckets : 'a bucket option array;  (** indexed by cardinality *)
  mutable size : int;
  mutable max_card : int;  (** highest cardinality ever inserted; -1 when none *)
  mutable next_seq : int;
}

let create () = { buckets = Array.make 8 None; size = 0; max_card = -1; next_seq = 0 }

let size t = t.size
let is_empty t = t.size = 0

let bucket_for t card =
  if card >= Array.length t.buckets then begin
    let grown = Array.make (Int.max (card + 1) (2 * Array.length t.buckets)) None in
    Array.blit t.buckets 0 grown 0 (Array.length t.buckets);
    t.buckets <- grown
  end;
  match t.buckets.(card) with
  | Some b -> b
  | None ->
    let b = { sig_union = 0; items = []; n = 0 } in
    t.buckets.(card) <- Some b;
    b

let add t env degree data =
  let card = Env.cardinal env in
  let b = bucket_for t card in
  b.items <- { env; degree; data; seq = t.next_seq } :: b.items;
  b.n <- b.n + 1;
  b.sig_union <- b.sig_union lor Env.signature env;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  if card > t.max_card then t.max_card <- card

(* [true] when some stored (e, d) has [e ⊆ env] and [d >= degree]. *)
let is_dominated t env degree =
  let card = Env.cardinal env and s = Env.signature env in
  let hi = Int.min card t.max_card in
  let rec scan k =
    k <= hi
    &&
    match t.buckets.(k) with
    | None -> scan (k + 1)
    | Some b ->
      if b.n = 0 then scan (k + 1)
      else if k > 0 && b.sig_union land s = 0 then begin
        (* no member shares a signature bit with env: none can be a
           nonempty subset of it *)
        Flames_obs.Metrics.incr bucket_skips_total;
        scan (k + 1)
      end
      else
        List.exists
          (fun it ->
            it.degree >= degree
            && Env.subset_word (Env.signature it.env) s
            && Env.subset it.env env)
          b.items
        || scan (k + 1)
  in
  scan 0

(* Highest degree of any stored subset of [env]; stops early once
   [stop_at] is reached (degrees are clamped to [0, 1] by the callers, so
   [~stop_at:1.] exits on the first hard entry). *)
let max_subset_degree ?(stop_at = infinity) t env =
  let card = Env.cardinal env and s = Env.signature env in
  let hi = Int.min card t.max_card in
  let best = ref 0. in
  (try
     for k = 0 to hi do
       match t.buckets.(k) with
       | None -> ()
       | Some b ->
         if b.n = 0 then ()
         else if k > 0 && b.sig_union land s = 0 then
           Flames_obs.Metrics.incr bucket_skips_total
         else
           List.iter
             (fun it ->
               if
                 it.degree > !best
                 && Env.subset_word (Env.signature it.env) s
                 && Env.subset it.env env
               then begin
                 best := it.degree;
                 if !best >= stop_at then raise Exit
               end)
             b.items
     done
   with Exit -> ());
  !best

let refresh_bucket b items n =
  b.items <- items;
  b.n <- n;
  b.sig_union <-
    List.fold_left (fun acc it -> acc lor Env.signature it.env) 0 items

(* Remove every stored (e, d) dominated by [(env, degree)], i.e. with
   [env ⊆ e] and [degree >= d].  Returns how many were removed. *)
let remove_dominated t env degree =
  let card = Env.cardinal env and s = Env.signature env in
  let removed = ref 0 in
  for k = card to t.max_card do
    match t.buckets.(k) with
    | None -> ()
    | Some b ->
      if b.n = 0 then ()
      else if not (Env.subset_word s b.sig_union) then
        (* env's signature is not covered: no member is a superset *)
        Flames_obs.Metrics.incr bucket_skips_total
      else begin
        let kept = ref [] and n = ref 0 and dropped = ref 0 in
        List.iter
          (fun it ->
            if
              degree >= it.degree
              && Env.subset_word s (Env.signature it.env)
              && Env.subset env it.env
            then incr dropped
            else begin
              kept := it :: !kept;
              incr n
            end)
          b.items;
        if !dropped > 0 then begin
          refresh_bucket b (List.rev !kept) !n;
          removed := !removed + !dropped
        end
      end
  done;
  t.size <- t.size - !removed;
  !removed

let iter f t =
  Array.iter
    (function
      | None -> ()
      | Some b -> List.iter (fun it -> f it) b.items)
    t.buckets

let fold f t acc =
  let acc = ref acc in
  iter (fun it -> acc := f it !acc) t;
  !acc

let to_list t = fold (fun it acc -> it :: acc) t []

(* Keep only items satisfying the predicate; returns how many were
   dropped. *)
let filter t pred =
  let removed = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some b ->
        if b.n > 0 then begin
          let kept = ref [] and n = ref 0 in
          List.iter
            (fun it ->
              if pred it then begin
                kept := it :: !kept;
                incr n
              end
              else incr removed)
            b.items;
          if !n < b.n then refresh_bucket b (List.rev !kept) !n
        end)
    t.buckets;
  t.size <- t.size - !removed;
  !removed

let clear t =
  Array.iteri
    (fun i -> function
      | None -> ()
      | Some _ -> t.buckets.(i) <- None)
    t.buckets;
  t.size <- 0;
  t.max_card <- -1
