(* Immutable, hash-consed bitset environments.

   Assumption ids index bits in an array of 63-bit words (LSB first, no
   trailing zero words, so the representation of a set is unique).  Every
   environment is interned in a per-domain weak set: structurally equal
   environments created in the same domain are physically equal, [equal]
   short-circuits on [==] (with a structural fallback so values that
   crossed a domain boundary still compare correctly), and [cardinal],
   [hash] and [signature] are O(1) cached fields.  [subset], [union],
   [inter], [diff] and [disjoint] are branch-free word loops.

   The 63-bit signature is the OR of all words — equivalently a Bloom
   word with hash [id mod 63] — so [a ⊆ b] implies
   [signature a land lnot (signature b) = 0], the quick reject used by
   {!Envindex} to skip whole buckets. *)

let word_bits = 63

type t = {
  words : int array;
  card : int;
  hcode : int;
  sign : int;
}

let interned_total =
  Flames_obs.Metrics.counter "flames_atms_envs_interned"
    ~help:"Distinct environments hash-consed into a domain's intern table"

(* {1 Word helpers} *)

let pop8 =
  Array.init 256 (fun i ->
      let rec count x = if x = 0 then 0 else (x land 1) + count (x lsr 1) in
      count i)

(* [lsr] is a logical shift, so this is sound on the (possibly negative)
   top word of a 63-bit int. *)
let popcount x =
  pop8.(x land 0xff)
  + pop8.((x lsr 8) land 0xff)
  + pop8.((x lsr 16) land 0xff)
  + pop8.((x lsr 24) land 0xff)
  + pop8.((x lsr 32) land 0xff)
  + pop8.((x lsr 40) land 0xff)
  + pop8.((x lsr 48) land 0xff)
  + pop8.((x lsr 56) land 0xff)

(* index of the lowest set bit of [x] (a single-bit value) *)
let bit_index low = popcount (low - 1)

let hash_words words =
  let h = ref 0x3ade68b1 in
  Array.iter
    (fun w ->
      (* mix both halves of the word into the running hash *)
      h := (!h * 0x01000193) lxor (w land 0x3fffffff);
      h := (!h * 0x01000193) lxor (w lsr 30))
    words;
  !h land max_int

(* {1 Interning} *)

module H = struct
  type nonrec t = t

  let equal a b = a.hcode = b.hcode && a.words = b.words
  let hash a = a.hcode
end

module W = Weak.Make (H)

(* One intern table per domain: no lock on the hot path, and the weak set
   lets dead environments be collected.  Environments that migrate across
   domains stay correct through the structural fallback in [equal]. *)
let table_key = Domain.DLS.new_key (fun () -> W.create 4096)

let empty = { words = [||]; card = 0; hcode = hash_words [||]; sign = 0 }

(* Takes ownership of [words] (callers never retain the array). *)
let intern words =
  let n = ref (Array.length words) in
  while !n > 0 && words.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then empty
  else begin
    let words = if !n = Array.length words then words else Array.sub words 0 !n in
    let card = Array.fold_left (fun acc w -> acc + popcount w) 0 words in
    let sign = Array.fold_left ( lor ) 0 words in
    let candidate = { words; card; hcode = hash_words words; sign } in
    let interned = W.merge (Domain.DLS.get table_key) candidate in
    if interned == candidate then Flames_obs.Metrics.incr interned_total;
    interned
  end

(* {1 Queries} *)

let is_empty t = t.card = 0
let cardinal t = t.card
let hash t = t.hcode
let signature t = t.sign
let subset_word sa sb = sa land lnot sb = 0
let equal a b = a == b || (a.hcode = b.hcode && a.words = b.words)

let check_id fn i =
  if i < 0 then invalid_arg (Printf.sprintf "Env.%s: negative id %d" fn i)

let mem i t =
  i >= 0
  &&
  let w = i / word_bits in
  w < Array.length t.words && t.words.(w) land (1 lsl (i mod word_bits)) <> 0

let singleton i =
  check_id "singleton" i;
  let w = i / word_bits in
  let words = Array.make (w + 1) 0 in
  words.(w) <- 1 lsl (i mod word_bits);
  intern words

let add i t =
  check_id "add" i;
  if mem i t then t
  else begin
    let w = i / word_bits in
    let len = Int.max (w + 1) (Array.length t.words) in
    let words = Array.make len 0 in
    Array.blit t.words 0 words 0 (Array.length t.words);
    words.(w) <- words.(w) lor (1 lsl (i mod word_bits));
    intern words
  end

let subset a b =
  a == b
  || a.card = 0
  || (a.card <= b.card
     && subset_word a.sign b.sign
     && Array.length a.words <= Array.length b.words
     &&
     let ok = ref true in
     for i = 0 to Array.length a.words - 1 do
       ok := !ok && a.words.(i) land lnot b.words.(i) = 0
     done;
     !ok)

let disjoint a b =
  a.sign land b.sign = 0
  ||
  let n = Int.min (Array.length a.words) (Array.length b.words) in
  let ok = ref true in
  for i = 0 to n - 1 do
    ok := !ok && a.words.(i) land b.words.(i) = 0
  done;
  !ok

let union a b =
  if a == b || b.card = 0 then a
  else if a.card = 0 then b
  else if subset b a then a
  else if subset a b then b
  else begin
    let la = Array.length a.words and lb = Array.length b.words in
    let n = Int.max la lb in
    let words =
      Array.init n (fun i ->
          (if i < la then a.words.(i) else 0)
          lor if i < lb then b.words.(i) else 0)
    in
    intern words
  end

let inter a b =
  if a == b then a
  else if a.card = 0 || b.card = 0 then empty
  else begin
    let n = Int.min (Array.length a.words) (Array.length b.words) in
    let words = Array.init n (fun i -> a.words.(i) land b.words.(i)) in
    intern words
  end

let diff a b =
  if a == b then empty
  else if a.card = 0 || b.card = 0 then a
  else begin
    let lb = Array.length b.words in
    let words =
      Array.init (Array.length a.words) (fun i ->
          a.words.(i) land lnot (if i < lb then b.words.(i) else 0))
    in
    intern words
  end

(* Total order matching [Set.Make(Int).compare]: lexicographic comparison
   of the sorted element sequences.  Let [m] be the smallest element of
   the symmetric difference, say [m ∈ a]: up to [m] both sets agree, [a]'s
   next element is [m] while [b]'s (if any) is larger — so [a < b] exactly
   when [b] still has an element above [m], else [b] is a proper prefix
   of [a] and [b < a]. *)
let compare a b =
  if a == b then 0
  else begin
    let la = Array.length a.words and lb = Array.length b.words in
    let n = Int.min la lb in
    let rec walk i =
      if i = n then
        (* one is a strict low-words prefix of the other *)
        if la = lb then 0 else if la < lb then -1 else 1
      else if a.words.(i) = b.words.(i) then walk (i + 1)
      else begin
        let x = a.words.(i) lxor b.words.(i) in
        let low = x land -x in
        let above = lnot (low lor (low - 1)) in
        if a.words.(i) land low <> 0 then
          if b.words.(i) land above <> 0 || i + 1 < lb then -1 else 1
        else if a.words.(i) land above <> 0 || i + 1 < la then 1
        else -1
      end
    in
    walk 0
  end

(* {1 Iteration (increasing id order)} *)

let fold f t acc =
  let acc = ref acc in
  for w = 0 to Array.length t.words - 1 do
    let x = ref t.words.(w) in
    let base = w * word_bits in
    while !x <> 0 do
      let low = !x land - !x in
      acc := f (base + bit_index low) !acc;
      x := !x lxor low
    done
  done;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let exists p t =
  let exception Found in
  try
    ignore (fold (fun i () -> if p i then raise Found) t ());
    false
  with Found -> true

let choose t =
  if t.card = 0 then None
  else begin
    let w = ref 0 in
    while t.words.(!w) = 0 do
      incr w
    done;
    let x = t.words.(!w) in
    Some ((!w * word_bits) + bit_index (x land -x))
  end

let of_list l = List.fold_left (fun env i -> add i env) empty l

let pp ~names ppf env =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf a -> Format.pp_print_string ppf (names a)))
    (to_list env)
