type conflict = { env : Env.t; degree : float; reason : string }

type diagnosis = { members : Env.t; rank : float; cardinality : int }

let of_nogoods entries =
  List.map
    (fun (e : Nogood.entry) ->
      { env = e.env; degree = e.degree; reason = e.reason })
    entries

let suspicion conflicts a =
  List.fold_left
    (fun acc c -> if Env.mem a c.env then Float.max acc c.degree else acc)
    0. conflicts

let suspicions conflicts =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      Env.fold
        (fun a () ->
          let cur = Option.value ~default:0. (Hashtbl.find_opt tbl a) in
          Hashtbl.replace tbl a (Float.max cur c.degree))
        c.env ())
    conflicts;
  Hashtbl.fold (fun a d acc -> (a, d) :: acc) tbl []
  |> List.sort (fun (a, da) (b, db) ->
         let c = Float.compare db da in
         if c <> 0 then c else Int.compare a b)

let diagnoses ?(threshold = 0.) ?limit ?interrupt conflicts =
  let active = List.filter (fun c -> c.degree >= threshold) conflicts in
  let sets =
    Hitting.minimal_hitting_sets ?limit ?interrupt
      (List.map (fun c -> c.env) active)
  in
  let susp = suspicion conflicts in
  let rank members =
    match Env.to_list members with
    | [] -> 0.
    | xs -> List.fold_left (fun acc a -> Float.min acc (susp a)) 1. xs
  in
  List.map
    (fun members ->
      { members; rank = rank members; cardinality = Env.cardinal members })
    sets
  |> List.sort (fun a b ->
         let c = Float.compare b.rank a.rank in
         if c <> 0 then c
         else
           let c = Int.compare a.cardinality b.cardinality in
           if c <> 0 then c else Env.compare a.members b.members)

let single_faults conflicts =
  match conflicts with
  | [] -> []
  | first :: rest ->
    let common =
      List.fold_left (fun acc c -> Env.inter acc c.env) first.env rest
    in
    let susp = suspicion conflicts in
    Env.to_list common
    |> List.map (fun a -> (a, susp a))
    |> List.sort (fun (_, da) (_, db) -> Float.compare db da)

let pp_diagnosis ~names ppf d =
  Format.fprintf ppf "%a @@ %.3g" (Env.pp ~names) d.members d.rank
