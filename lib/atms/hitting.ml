module Metrics = Flames_obs.Metrics
module Trace = Flames_obs.Trace

(* Hitting-set construction is the candidate-generation blow-up point
   (abduction is where the complexity lives), so its in/out/prune
   volumes are first-class metrics. *)
let conflicts_total =
  Metrics.counter "flames_hitting_conflicts_total"
    ~help:"Conflict sets fed to minimal hitting-set enumeration"

let candidates_total =
  Metrics.counter "flames_hitting_candidates_total"
    ~help:"Minimal hitting sets (candidate diagnoses) produced"

let prunes_total =
  Metrics.counter "flames_hitting_subsumption_prunes_total"
    ~help:"Partial hitting sets discarded as supersets of a completed one"

let seconds =
  Metrics.histogram "flames_hitting_seconds"
    ~help:"Latency of one minimal hitting-set enumeration"

module EnvTbl = Hashtbl.Make (struct
  type t = Env.t

  let equal = Env.equal
  let hash = Env.hash
end)

let hits_all candidate conflicts =
  List.for_all (fun c -> not (Env.disjoint candidate c)) conflicts

(* Small conflicts first: they force elements into every partial set
   early, so completed sets appear sooner and the subsumption prune
   fires on more of the frontier. *)
let expansion_order conflicts =
  List.stable_sort
    (fun a b -> Int.compare (Env.cardinal a) (Env.cardinal b))
    (List.sort_uniq Env.compare conflicts)

let interrupts_total =
  Metrics.counter "flames_hitting_interrupts_total"
    ~help:"Hitting-set enumerations stopped early by a budget interrupt"

(* Breadth-first expansion: maintain a frontier of partial hitting sets
   ordered by construction; extend each with the elements of the first
   conflict it does not hit.  Minimality: a completed set is kept only if
   no kept set is a subset of it, and partial sets subsumed by a completed
   set are pruned — the completed sets live in an {!Envindex} so the
   prune is a bucketed subset query, not a scan.

   Soundness under truncation: expansion grows partial sets one element
   per queue generation, so completed sets appear in non-decreasing
   cardinality and a later set can never be a strict subset of an earlier
   one.  Every prefix of the completed list is therefore a set of genuine
   minimal hitting sets — stopping early (interrupt or limit) degrades
   completeness, never soundness, which is what lets a budget-tripped
   diagnosis keep its truncated candidate list. *)
let enumerate ?(limit = 10_000) ?(presort = true) ?interrupt conflicts =
  Trace.with_span ~record:seconds "hitting.minimal" @@ fun () ->
  let conflicts =
    if presort then expansion_order conflicts
    else List.sort_uniq Env.compare conflicts
  in
  Metrics.incr ~by:(List.length conflicts) conflicts_total;
  if conflicts = [] then ([ Env.empty ], false)
  else if List.exists Env.is_empty conflicts then ([], false)
  else begin
    let complete = ref [] and n_complete = ref 0 in
    let complete_idx : unit Envindex.t = Envindex.create () in
    let is_subsumed env = Envindex.is_dominated complete_idx env 1. in
    let rec first_missed env = function
      | [] -> None
      | c :: rest -> if Env.disjoint env c then Some c else first_missed env rest
    in
    (* the interrupt is honoured only once something is on the completed
       list: a budget floor of one candidate, so the degraded diagnosis
       is never empty when any conflict exists (the smallest hitting set
       completes within the first few frontier generations) *)
    let stopped = ref false in
    let should_stop () =
      match interrupt with
      | Some f when !n_complete > 0 && f () -> true
      | Some _ | None -> false
    in
    let queue = Queue.create () in
    Queue.add Env.empty queue;
    let seen = EnvTbl.create 256 in
    while
      (not (Queue.is_empty queue))
      && !n_complete < limit
      && not (!stopped || (should_stop () && (stopped := true; true)))
    do
      let env = Queue.pop queue in
      if is_subsumed env then Metrics.incr prunes_total
      else
        match first_missed env conflicts with
        | None ->
          complete := env :: !complete;
          incr n_complete;
          Envindex.add complete_idx env 1. ()
        | Some c ->
          Env.fold
            (fun a () ->
              let env' = Env.add a env in
              if not (EnvTbl.mem seen env') then begin
                EnvTbl.add seen env' ();
                Queue.add env' queue
              end)
            c ()
    done;
    let truncated = !stopped || not (Queue.is_empty queue) in
    if !stopped then Metrics.incr interrupts_total;
    Metrics.incr ~by:!n_complete candidates_total;
    let by_size a b =
      let c = Int.compare (Env.cardinal a) (Env.cardinal b) in
      if c <> 0 then c else Env.compare a b
    in
    (List.sort by_size !complete, truncated)
  end

let minimal_hitting_sets ?limit ?presort ?interrupt conflicts =
  fst (enumerate ?limit ?presort ?interrupt conflicts)
