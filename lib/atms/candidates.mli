(** Diagnosis candidates from weighted conflicts (paper sections 6.1, 6.3).

    The fuzzy ATMS produces minimal nogoods with degrees ([1 - Dc]).
    From those this module derives:

    - the per-assumption {e suspicion}: the highest degree of any conflict
      containing the assumption (how seriously it is implicated);
    - the ranked minimal {e diagnoses}: minimal hitting sets of the
      conflicts above a degree threshold, ranked by the min of their
      members' suspicions (a diagnosis built only from weakly implicated
      components ranks low) then by cardinality — this reproduces the
      paper's fig-5 ordering where [{d1}] outranks [{r1, r2}] and
      conflict [{r2, d1}@1] outranks [{r1, d1}@0.5]. *)

type conflict = { env : Env.t; degree : float; reason : string }

type diagnosis = {
  members : Env.t;  (** the components assumed faulty *)
  rank : float;  (** min of the members' suspicions, in (0, 1] *)
  cardinality : int;
}

val of_nogoods : Nogood.entry list -> conflict list
(** Re-expose nogood entries as conflicts. *)

val suspicion : conflict list -> int -> float
(** Suspicion degree of one assumption. *)

val suspicions : conflict list -> (int * float) list
(** All implicated assumptions with their suspicion, most suspect first. *)

val diagnoses :
  ?threshold:float -> ?limit:int -> ?interrupt:(unit -> bool) ->
  conflict list -> diagnosis list
(** Minimal diagnoses of the conflicts with degree [>= threshold]
    (default [0.], i.e. all), ranked best first.  [interrupt] is the
    cooperative budget check-point of
    {!Hitting.minimal_hitting_sets}: enumeration may stop early, and
    the (sound, possibly incomplete) sets found so far are ranked and
    returned. *)

val single_faults : conflict list -> (int * float) list
(** Assumptions that alone explain every conflict (members of all
    conflicts), with their suspicion — the preferred single-fault
    candidates. *)

val pp_diagnosis : names:(int -> string) -> Format.formatter -> diagnosis -> unit
