type entry = { env : Env.t; degree : float; reason : string }

type t = {
  idx : string Envindex.t;  (** reasons ride along as payloads *)
  mutable sorted : entry list option;  (** cached {!entries} view *)
}

(* Every nogood database in the process feeds one counter: conflict
   discovery is the quantity the complexity results say to watch. *)
let nogoods_total =
  Flames_obs.Metrics.counter "flames_atms_nogoods_total"
    ~help:"Fuzzy nogoods recorded across every ATMS/propagation database"

let create () = { idx = Envindex.create (); sorted = None }

let record db ?(reason = "") env degree =
  let degree = Flames_fuzzy.Tnorm.clamp01 degree in
  if degree <= 0. then false
  else if Envindex.is_dominated db.idx env degree then false
  else begin
    (* drop entries that the new nogood dominates *)
    ignore (Envindex.remove_dominated db.idx env degree);
    Envindex.add db.idx env degree reason;
    db.sorted <- None;
    Flames_obs.Metrics.incr nogoods_total;
    true
  end

let entries db =
  match db.sorted with
  | Some cached -> cached
  | None ->
    let sorted =
      Envindex.fold (fun it acc -> it :: acc) db.idx []
      |> List.sort (fun (a : _ Envindex.item) (b : _ Envindex.item) ->
             let c = Float.compare b.degree a.degree in
             if c <> 0 then c
             else
               let c =
                 Int.compare (Env.cardinal a.env) (Env.cardinal b.env)
               in
               (* canonical tiebreak: the view must not depend on the
                  order conflicts were discovered in, so that a database
                  grown incrementally (measurements added one at a time)
                  reads identically to one grown in a single batch *)
               if c <> 0 then c else Env.compare a.env b.env)
      |> List.map (fun (it : _ Envindex.item) ->
             { env = it.env; degree = it.degree; reason = it.data })
    in
    db.sorted <- Some sorted;
    sorted

(* Degrees are clamped to [0, 1] on entry, so the scan can stop at the
   first hard (degree-1) subset. *)
let inconsistency db env = Envindex.max_subset_degree ~stop_at:1. db.idx env

let is_nogood db ?(threshold = 1.) env = inconsistency db env >= threshold
let count db = Envindex.size db.idx

let clear db =
  Envindex.clear db.idx;
  db.sorted <- None

let pp ~names ppf db =
  Format.pp_print_list
    ~pp_sep:Format.pp_print_newline
    (fun ppf e ->
      Format.fprintf ppf "nogood %a @@ %.3g%s" (Env.pp ~names) e.env e.degree
        (if e.reason = "" then "" else " (" ^ e.reason ^ ")"))
    ppf (entries db)
