type entry = { env : Env.t; degree : float; reason : string }
type t = { mutable items : entry list }

(* Every nogood database in the process feeds one counter: conflict
   discovery is the quantity the complexity results say to watch. *)
let nogoods_total =
  Flames_obs.Metrics.counter "flames_atms_nogoods_total"
    ~help:"Fuzzy nogoods recorded across every ATMS/propagation database"

let create () = { items = [] }

let record db ?(reason = "") env degree =
  let degree = Flames_fuzzy.Tnorm.clamp01 degree in
  if degree <= 0. then false
  else
    let subsumed =
      List.exists
        (fun e -> Env.subset e.env env && e.degree >= degree)
        db.items
    in
    if subsumed then false
    else begin
      (* drop entries that the new nogood strictly dominates *)
      db.items <-
        List.filter
          (fun e -> not (Env.subset env e.env && degree >= e.degree))
          db.items;
      db.items <- { env; degree; reason } :: db.items;
      Flames_obs.Metrics.incr nogoods_total;
      true
    end

let entries db =
  List.sort
    (fun a b ->
      let c = Float.compare b.degree a.degree in
      if c <> 0 then c else Int.compare (Env.cardinal a.env) (Env.cardinal b.env))
    db.items

let inconsistency db env =
  List.fold_left
    (fun acc e -> if Env.subset e.env env then Float.max acc e.degree else acc)
    0. db.items

let is_nogood db ?(threshold = 1.) env = inconsistency db env >= threshold
let count db = List.length db.items
let clear db = db.items <- []

let pp ~names ppf db =
  Format.pp_print_list
    ~pp_sep:Format.pp_print_newline
    (fun ppf e ->
      Format.fprintf ppf "nogood %a @@ %.3g%s" (Env.pp ~names) e.env e.degree
        (if e.reason = "" then "" else " (" ^ e.reason ^ ")"))
    ppf (entries db)
