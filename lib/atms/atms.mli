(** An Assumption-based Truth Maintenance System (de Kleer 1986) extended
    with graded (fuzzy) justifications and weighted nogoods, as required
    by the paper's fuzzy-ATMS kernel (section 6).

    Each node carries a label: the set of minimal consistent environments
    in which the node holds, each with a believability degree obtained by
    min-combining the certainty degrees of the justifications used.
    Contradiction nodes feed the weighted nogood database; hard nogoods
    (degree 1) remove environments from labels, soft nogoods only lower
    their degree. *)

type t
(** A mutable ATMS instance. *)

type node
(** A statement tracked by the ATMS. *)

type labelled = { env : Env.t; degree : float }
(** One label entry: the node holds in [env] with certainty [degree]. *)

val create : unit -> t

(** {1 Assumptions and nodes} *)

val assumption : t -> string -> node
(** [assumption atms name] creates a fresh assumption and its node
    (labelled with its own singleton environment at degree 1).
    Assumption names must be unique within an instance.
    @raise Invalid_argument on a duplicate name. *)

val node : t -> string -> node
(** [node atms datum] creates a non-assumption node with an empty label.
    Datum strings are unique; re-calling with the same datum returns the
    existing node. *)

val contradiction : t -> node
(** The distinguished falsity node of the instance. *)

val premise : t -> node -> unit
(** Mark a node as a premise: it holds in the empty environment with
    degree 1. *)

(** {1 Justifications} *)

val justify : t -> ?degree:float -> antecedents:node list -> node -> unit
(** [justify atms ~antecedents n] installs the justification
    [antecedents → n] with certainty [degree] (default 1) and
    incrementally updates labels downstream.  Justifying the
    contradiction node records nogoods instead. *)

val justify_disjunction : t -> ?degree:float -> antecedents:node list -> node list -> unit
(** Non-Horn clause [antecedents → d1 ∨ ... ∨ dk]: the fuzzy ATMS accepts
    it by weakening — each disjunct receives the justification with
    degree [degree / k] — mirroring the possibilistic reading the paper
    refers to.  @raise Invalid_argument on an empty disjunct list. *)

(** {1 Queries} *)

val label : t -> node -> labelled list
(** Minimal consistent environments of the node, strongest first. *)

val holds_in : t -> node -> Env.t -> float
(** Highest degree with which the node holds in (a subset of) [env];
    0 when it does not. *)

val is_in : t -> node -> Env.t -> bool
(** [holds_in > 0]. *)

val consistent : t -> Env.t -> bool
(** No hard nogood is included in the environment. *)

val nogoods : t -> Nogood.entry list
val nogood_db : t -> Nogood.t

val env_of_assumptions : t -> node list -> Env.t
(** Environment made of the given assumption nodes.
    @raise Invalid_argument if a node is not an assumption. *)

val name : t -> int -> string
(** Name of an assumption id (for printing). *)

val datum : node -> string
val assumption_count : t -> int

val pp_node : t -> Format.formatter -> node -> unit
(** Prints the datum and its label. *)

(** {1 Label audit}

    The fuzzy-ATMS label laws (after Fringuelli et al.'s fuzzy
    reason-maintenance algebra): every label entry must be {e sound}
    (re-derivable from the installed justifications, or a
    premise/assumption seed), {e minimal} (no entry subsumed by another
    with an equal-or-higher degree), {e consistent} (no hard nogood
    retained), with degrees in (0, 1] and only known assumption ids. *)

exception Audit_failure of string list
(** Raised by {!self_check} (and debug mode) with the violations found. *)

val audit : t -> string list
(** Re-derive every label from the recorded justifications and return
    the list of law violations — empty on a healthy instance.  Only
    meaningful at quiescence (outside a propagation), which is the only
    time user code can call it. *)

val self_check : t -> unit
(** @raise Audit_failure when {!audit} reports violations. *)

val set_debug : t -> bool -> unit
(** Debug hook: when enabled, {!self_check} runs after every {!justify},
    {!justify_disjunction} and {!premise}, so the first operation that
    breaks a label law raises immediately with the violation. *)

val debug : t -> bool

val set_interrupt : t -> (unit -> bool) option -> unit
(** Cooperative budget check-point, polled once per justification firing
    during label propagation (e.g. [Some (Budget.interrupt_of b)]).
    When it answers [true] the running propagation stops: labels keep
    every entry derived so far (sound) but may miss derivable entries
    (incomplete), and {!truncated} latches.  A truncated network fails
    the completeness half of {!audit} by design — clear the hook and
    re-fire to restore quiescence before auditing. *)

val truncated : t -> bool
(** Some propagation since creation stopped at the interrupt. *)
