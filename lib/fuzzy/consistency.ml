type direction = Within | Low | High
type verdict = { dc : float; direction : direction }

type coincidence =
  | Corroboration
  | Split_measured_in_nominal
  | Split_nominal_in_measured
  | Partial_conflict of float
  | Conflict

let area_epsilon = 1e-12

(* Guard against float pathologies (0/0, inf/inf): any NaN ratio means a
   degenerate overlap computation, and a degenerate overlap is no
   overlap. *)
let ratio01 num den =
  let r = num /. den in
  if r <> r then 0. else Float.max 0. (Float.min 1. r)

let dc ~measured ~nominal =
  if not (Interval.overlap measured nominal) then
    (* disjoint supports: no consistency at all, whatever the shapes
       (including two distinct degenerate points) *)
    0.
  else
    let am = Interval.area measured in
    if am <= area_epsilon then
      (* limit case: a crisp point; Dc degenerates to the membership of the
         point in the nominal distribution *)
      Interval.membership nominal (Interval.midpoint measured)
    else ratio01 (Piecewise.min_area measured nominal) am

(* A deviation direction is only meaningful once there is a deviation:
   quasi-consistent pairs (Dc close to 1) are classified Within, the rest
   by comparing centroids.  A centroid tie carries no direction either
   (e.g. a symmetric spread deviation), so it is also Within — this is
   what keeps the direction stable under operand swap: Low and High
   exchange exactly, Within is preserved. *)
let direction_of ~measured ~nominal d =
  if d >= 0.995 then Within
  else
    let cm = Interval.centroid measured and cn = Interval.centroid nominal in
    if cm < cn then Low else if cm > cn then High else Within

let verdict ~measured ~nominal =
  let d = dc ~measured ~nominal in
  { dc = d; direction = direction_of ~measured ~nominal d }

let signed_dc ~measured ~nominal =
  let v = verdict ~measured ~nominal in
  match v.direction with
  | Within -> v.dc
  | High -> if v.dc = 0. then 1. else v.dc
  | Low -> if v.dc = 0. then -1. else -.v.dc

let classify a b =
  if not (Interval.overlap a b) then Conflict
  else if Interval.equal ~eps:1e-9 a b then Corroboration
  else if Interval.contains b a then Split_measured_in_nominal
  else if Interval.contains a b then Split_nominal_in_measured
  else
    let d = dc ~measured:a ~nominal:b in
    if d >= 1. -. 1e-9 then Split_measured_in_nominal
    else Partial_conflict d

let nogood_degree ~measured ~nominal = 1. -. dc ~measured ~nominal

let pp_direction ppf = function
  | Within -> Format.pp_print_string ppf "within"
  | Low -> Format.pp_print_string ppf "low"
  | High -> Format.pp_print_string ppf "high"

let pp_verdict ppf v =
  Format.fprintf ppf "Dc=%.3g (%a)" v.dc pp_direction v.direction

let pp_coincidence ppf = function
  | Corroboration -> Format.pp_print_string ppf "corroboration"
  | Split_measured_in_nominal -> Format.pp_print_string ppf "split (measured ⊆ nominal)"
  | Split_nominal_in_measured -> Format.pp_print_string ppf "split (nominal ⊆ measured)"
  | Partial_conflict d -> Format.fprintf ppf "partial conflict (Dc=%.3g)" d
  | Conflict -> Format.pp_print_string ppf "conflict"
