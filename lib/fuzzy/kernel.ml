(* Scalar kernels for the compiled propagation path.

   Each function replicates its reference in {!Piecewise} /
   {!Consistency} bit-for-bit: same breakpoint merge (Float.compare
   order and dedup), same one-sided-limit extrapolation at segment
   endpoints, same left-to-right float accumulation.  A compiled engine
   and the interpreter must produce byte-identical degrees — the only
   difference here is mechanical: a caller-provided scratch array of
   the at most 8 trapezoid corners instead of sorted lists and
   closures, and one breakpoint merge shared by the height scan and the
   area integration. *)

let mem = Interval.membership

(* Merge the breakpoints of two trapezoids into [pts] (ascending,
   deduplicated), returning the count.  Insertion sort with
   Float.compare mirrors [List.sort_uniq Float.compare] over the 8
   corners exactly: Float.compare is a total order (distinguishing -0.
   from +0.), and [Interval.make] guarantees no NaN reaches us. *)
let fill_breakpoints (pts : float array) (a : Interval.t) (b : Interval.t) =
  let n = ref 0 in
  let insert x =
    let j = ref 0 in
    while !j < !n && Float.compare x pts.(!j) > 0 do
      incr j
    done;
    if !j < !n && Float.compare x pts.(!j) = 0 then ()
    else begin
      for k = !n downto !j + 1 do
        pts.(k) <- pts.(k - 1)
      done;
      pts.(!j) <- x;
      incr n
    end
  in
  insert (a.Interval.m1 -. a.Interval.alpha);
  insert a.Interval.m1;
  insert a.Interval.m2;
  insert (a.Interval.m2 +. a.Interval.beta);
  insert (b.Interval.m1 -. b.Interval.alpha);
  insert b.Interval.m1;
  insert b.Interval.m2;
  insert (b.Interval.m2 +. b.Interval.beta);
  !n

(* Height of the pointwise minimum over pre-filled breakpoints;
   replicates [Piecewise.height_of_min] (breakpoints, then crossings,
   folded through Float.max from 0. — order-insensitive, no NaN). *)
let height_on (pts : float array) n (a : Interval.t) (b : Interval.t) =
  let best = ref 0. in
  for i = 0 to n - 1 do
    let x = pts.(i) in
    best := Float.max !best (Float.min (mem a x) (mem b x))
  done;
  for i = 0 to n - 2 do
    let x0 = pts.(i) and x1 = pts.(i + 1) in
    let dl = mem a x0 -. mem b x0 and dh = mem a x1 -. mem b x1 in
    if dl *. dh < 0. then begin
      let t = dl /. (dl -. dh) in
      let x = x0 +. (t *. (x1 -. x0)) in
      best := Float.max !best (Float.min (mem a x) (mem b x))
    end
  done;
  !best

(* Area of the pointwise minimum over pre-filled breakpoints;
   replicates [Piecewise.min_area]'s left-to-right accumulation with
   the same one-sided-limit extrapolation per segment. *)
let min_area_on (pts : float array) n (a : Interval.t) (b : Interval.t) =
  let acc = ref 0. in
  for i = 0 to n - 2 do
    let lo = pts.(i) and hi = pts.(i + 1) in
    (* Piecewise.segment_integral, min component only *)
    let mi =
      if hi <= lo then 0.
      else begin
        let x1 = lo +. ((hi -. lo) /. 3.) and x2 = hi -. ((hi -. lo) /. 3.) in
        let f1 = mem a x1 and f2 = mem a x2 in
        let fl = (2. *. f1) -. f2 and fh = (2. *. f2) -. f1 in
        let g1 = mem b x1 and g2 = mem b x2 in
        let gl = (2. *. g1) -. g2 and gh = (2. *. g2) -. g1 in
        let dl = fl -. gl and dh = fh -. gh in
        if dl *. dh >= 0. then
          (Float.min fl gl +. Float.min fh gh) /. 2. *. (hi -. lo)
        else begin
          let t = dl /. (dl -. dh) in
          let xm = lo +. (t *. (hi -. lo)) in
          let ym = fl +. ((fh -. fl) *. t) in
          ((Float.min fl gl +. ym) /. 2. *. (xm -. lo))
          +. ((ym +. Float.min fh gh) /. 2. *. (hi -. xm))
        end
      end
    in
    acc := !acc +. mi
  done;
  !acc

let height_of_min ?scratch (a : Interval.t) (b : Interval.t) =
  let pts = match scratch with Some p -> p | None -> Array.make 8 0. in
  let n = fill_breakpoints pts a b in
  height_on pts n a b

let min_area ?scratch (a : Interval.t) (b : Interval.t) =
  let pts = match scratch with Some p -> p | None -> Array.make 8 0. in
  let n = fill_breakpoints pts a b in
  min_area_on pts n a b

let dc ?scratch ~measured ~nominal () =
  if not (Interval.overlap measured nominal) then 0.
  else
    let am = Interval.area measured in
    if am <= 1e-12 (* Consistency.area_epsilon *) then
      Interval.membership nominal (Interval.midpoint measured)
    else
      let r = min_area ?scratch measured nominal /. am in
      if r <> r then 0. else Float.max 0. (Float.min 1. r)

(* The compiled engine's fused coincidence degree:
   [max (Consistency.dc ~measured ~nominal) (height_of_min measured
   nominal)] with one breakpoint merge for both parts.  [Consistency]
   computes the two independently; every float operation inside each
   part is identical, so the result is bit-identical. *)
let consist ~(scratch : float array) ~measured ~nominal =
  let n = fill_breakpoints scratch measured nominal in
  let height = height_on scratch n measured nominal in
  if height >= 1. then height
  else
    let d =
      if not (Interval.overlap measured nominal) then 0.
      else
        let am = Interval.area measured in
        if am <= 1e-12 then Interval.membership nominal (Interval.midpoint measured)
        else
          let r = min_area_on scratch n measured nominal /. am in
          if r <> r then 0. else Float.max 0. (Float.min 1. r)
    in
    Float.max d height
