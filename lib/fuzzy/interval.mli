(** Trapezoidal fuzzy intervals.

    A fuzzy interval is represented by the 4-tuple [m1, m2, alpha, beta]
    of the paper (fig. 1): the core is the crisp interval [m1, m2] where
    the membership degree is 1, and the membership decreases linearly to 0
    over [m1 - alpha, m1] on the left and [m2, m2 + beta] on the right.

    This single representation uniformly covers crisp numbers
    ([m, m, 0, 0]), crisp intervals ([a, b, 0, 0]), fuzzy numbers
    ([m, m, alpha, beta]) and general fuzzy intervals. *)

type t = private {
  m1 : float;  (** lower bound of the core *)
  m2 : float;  (** upper bound of the core *)
  alpha : float;  (** width of the left flank, [>= 0] *)
  beta : float;  (** width of the right flank, [>= 0] *)
}

exception Invalid of string
(** Raised by constructors on malformed parameters (non-finite field,
    [m1 > m2], negative flank width). *)

(** {1 Constructors} *)

val make : m1:float -> m2:float -> alpha:float -> beta:float -> t
(** [make ~m1 ~m2 ~alpha ~beta] builds the fuzzy interval
    [[m1, m2, alpha, beta]].
    @raise Invalid if [m1 > m2], a flank is negative, or any field is
    NaN or infinite. *)

val normalized : m1:float -> m2:float -> alpha:float -> beta:float -> t
(** Like {!make} but repairs instead of rejecting: swapped core bounds
    are reordered and negative flanks clamped to 0.  For call sites whose
    parameters are computed and may be degenerate by construction
    (e.g. random generation, learned bounds).
    @raise Invalid on non-finite fields, which are never repairable. *)

val crisp : float -> t
(** [crisp m] is the crisp number [[m, m, 0, 0]]. *)

val crisp_interval : float -> float -> t
(** [crisp_interval a b] is the crisp interval [[a, b, 0, 0]].
    @raise Invalid if [a > b]. *)

val number : float -> spread:float -> t
(** [number m ~spread] is the symmetric fuzzy number [[m, m, spread, spread]]. *)

val around : float -> rel:float -> t
(** [around m ~rel] is the fuzzy number centred on [m] with flanks of
    relative width [rel * abs m] (used for component tolerances).
    For [m = 0] the flank width is [rel] itself. *)

(** {1 Accessors} *)

val core : t -> float * float
(** [core v] is the crisp interval of full membership [(m1, m2)]. *)

val support : t -> float * float
(** [support v] is the interval of non-zero membership
    [(m1 - alpha, m2 + beta)]. *)

val membership : t -> float -> float
(** [membership v x] is the membership degree of [x] in [v], in [0, 1]. *)

val alpha_cut : t -> float -> (float * float) option
(** [alpha_cut v a] is the crisp interval of points with membership
    [>= a], or [None] if [a > 1] or [a <= 0]. *)

val area : t -> float
(** [area v] is the integral of the membership function:
    [(m2 - m1) + (alpha + beta) / 2]. Zero for crisp numbers. *)

val centroid : t -> float
(** [centroid v] is the centre of gravity of the membership function,
    used for defuzzification and ranking. For a zero-area value the
    midpoint of the core is returned. *)

val width : t -> float
(** [width v] is the support width [m2 + beta - (m1 - alpha)]. *)

val midpoint : t -> float
(** [midpoint v] is the midpoint of the core. *)

(** {1 Predicates} *)

val is_crisp : t -> bool
(** [is_crisp v] holds when both flanks are zero. *)

val is_point : t -> bool
(** [is_point v] holds when [v] is a single crisp number. *)

val contains : t -> t -> bool
(** [contains outer inner] holds when the support of [inner] is included
    in the support of [outer] and its core in the core of [outer]
    (the "A splits B" containment of fig. 4). *)

val overlap : t -> t -> bool
(** [overlap a b] holds when supports intersect with positive length
    (or touch, for point values). *)

val equal : ?eps:float -> t -> t -> bool
(** Structural equality of the four parameters up to [eps]
    (default [1e-9]). *)

val equal_rel : ?rel:float -> t -> t -> bool
(** Structural equality up to a relative tolerance (default [1e-3])
    scaled by the magnitude of the values — used to collapse derivation
    families that differ only by floating-point jitter. *)

val compare_centroid : t -> t -> int
(** Total order by centroid then by width; used to rank fuzzy values. *)

(** {1 Formatting} *)

val pp : Format.formatter -> t -> unit
(** Prints as [[m1,m2,a,b]] with compact float formatting. *)

val to_string : t -> string
