type t = { m1 : float; m2 : float; alpha : float; beta : float }

exception Invalid of string

let is_finite (x : float) = x -. x = 0.

let make ~m1 ~m2 ~alpha ~beta =
  if not (is_finite m1 && is_finite m2 && is_finite alpha && is_finite beta)
  then
    raise
      (Invalid
         (Printf.sprintf "non-finite fuzzy interval field: [%g,%g,%g,%g]" m1
            m2 alpha beta));
  if m1 > m2 then
    raise (Invalid (Printf.sprintf "core bounds inverted: m1=%g > m2=%g" m1 m2));
  if alpha < 0. || beta < 0. then
    raise (Invalid (Printf.sprintf "negative flank: alpha=%g beta=%g" alpha beta));
  { m1; m2; alpha; beta }

(* Repair instead of reject: used by generators and by call sites whose
   inputs are computed and may be degenerate by construction. *)
let normalized ~m1 ~m2 ~alpha ~beta =
  if not (is_finite m1 && is_finite m2 && is_finite alpha && is_finite beta)
  then
    raise
      (Invalid
         (Printf.sprintf "non-finite fuzzy interval field: [%g,%g,%g,%g]" m1
            m2 alpha beta));
  let m1, m2 = if m1 <= m2 then (m1, m2) else (m2, m1) in
  { m1; m2; alpha = Float.max 0. alpha; beta = Float.max 0. beta }

let crisp m = make ~m1:m ~m2:m ~alpha:0. ~beta:0.
let crisp_interval a b = make ~m1:a ~m2:b ~alpha:0. ~beta:0.
let number m ~spread = make ~m1:m ~m2:m ~alpha:spread ~beta:spread

let around m ~rel =
  let w = if m = 0. then rel else rel *. Float.abs m in
  number m ~spread:w

let core v = (v.m1, v.m2)
let support v = (v.m1 -. v.alpha, v.m2 +. v.beta)

let membership v x =
  if x >= v.m1 && x <= v.m2 then 1.
  else if x < v.m1 then
    if v.alpha = 0. then 0.
    else
      let d = (x -. (v.m1 -. v.alpha)) /. v.alpha in
      Float.max 0. d
  else if v.beta = 0. then 0.
  else
    let d = (v.m2 +. v.beta -. x) /. v.beta in
    Float.max 0. d

let alpha_cut v a =
  if a <= 0. || a > 1. then None
  else Some (v.m1 -. ((1. -. a) *. v.alpha), v.m2 +. ((1. -. a) *. v.beta))

let area v = v.m2 -. v.m1 +. ((v.alpha +. v.beta) /. 2.)
let width v = v.m2 +. v.beta -. (v.m1 -. v.alpha)
let midpoint v = (v.m1 +. v.m2) /. 2.

(* Centroid of the trapezoid: weighted average of the three pieces
   (left triangle, core rectangle, right triangle). *)
let centroid v =
  let a = area v in
  if a <= 0. then midpoint v
  else
    let left_area = v.alpha /. 2.
    and left_cg = v.m1 -. (v.alpha /. 3.)
    and mid_area = v.m2 -. v.m1
    and mid_cg = midpoint v
    and right_area = v.beta /. 2.
    and right_cg = v.m2 +. (v.beta /. 3.) in
    ((left_area *. left_cg) +. (mid_area *. mid_cg) +. (right_area *. right_cg))
    /. a

let is_crisp v = v.alpha = 0. && v.beta = 0.
let is_point v = is_crisp v && v.m1 = v.m2

let contains outer inner =
  let olo, ohi = support outer and ilo, ihi = support inner in
  olo <= ilo && ihi <= ohi && outer.m1 <= inner.m1 && inner.m2 <= outer.m2

let overlap a b =
  let alo, ahi = support a and blo, bhi = support b in
  ahi >= blo && bhi >= alo

let equal ?(eps = 1e-9) a b =
  Float.abs (a.m1 -. b.m1) <= eps
  && Float.abs (a.m2 -. b.m2) <= eps
  && Float.abs (a.alpha -. b.alpha) <= eps
  && Float.abs (a.beta -. b.beta) <= eps

let equal_rel ?(rel = 1e-3) a b =
  let scale =
    List.fold_left
      (fun acc x -> Float.max acc (Float.abs x))
      1e-30
      [ a.m1; a.m2; b.m1; b.m2; a.alpha; a.beta; b.alpha; b.beta ]
  in
  equal ~eps:(rel *. scale) a b

let compare_centroid a b =
  let c = Float.compare (centroid a) (centroid b) in
  if c <> 0 then c else Float.compare (width a) (width b)

let pp ppf v =
  Format.fprintf ppf "[%g,%g,%g,%g]" v.m1 v.m2 v.alpha v.beta

let to_string v = Format.asprintf "%a" pp v
