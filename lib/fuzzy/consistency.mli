(** Degree of consistency between a measured and a nominal fuzzy value
    (paper section 6.1.2).

    [Dc = area (Vm ⊓ Vn) / area Vm] where [⊓] is the pointwise minimum of
    the membership functions.  [Dc = 1] when [Vm ⊆ Vn] (the proposition
    "X ∈ Vn" is necessarily true), [Dc = 0] when the supports are
    disjoint, and [0 < Dc < 1] for a partial conflict. *)

(** Side of the nominal value on which the measured value (mostly) lies.
    The classification is antisymmetric under operand swap: if [measured]
    deviates [Low] of [nominal] then [nominal] deviates [High] of
    [measured], and [Within] (including the directionless centroid-tie
    case, e.g. a pure spread deviation) is preserved. *)
type direction =
  | Within  (** measured centroid inside the nominal core *)
  | Low  (** measured centroid below the nominal core *)
  | High  (** measured centroid above the nominal core *)

type verdict = {
  dc : float;  (** degree of consistency in [0, 1] *)
  direction : direction;
}

(** The four coincidence cases of fig. 4. *)
type coincidence =
  | Corroboration  (** same value (Dc = 1 both ways) *)
  | Split_measured_in_nominal  (** measured included in nominal *)
  | Split_nominal_in_measured  (** nominal included in measured *)
  | Partial_conflict of float  (** overlap with Dc < 1; payload is Dc *)
  | Conflict  (** disjoint supports, Dc = 0 *)

val dc : measured:Interval.t -> nominal:Interval.t -> float
(** [dc ~measured ~nominal] is the degree of consistency, always a number
    in [0, 1] (never NaN).  When the measured value has (near-)zero
    area — a crisp point — the limit definition is used: the membership
    of the point's core midpoint in the nominal value.  Disjoint supports
    give exactly 0, including between two degenerate points. *)

val verdict : measured:Interval.t -> nominal:Interval.t -> verdict
(** Dc together with the deviation direction. *)

val signed_dc : measured:Interval.t -> nominal:Interval.t -> float
(** Display-compatible signed Dc as printed in the paper's fig. 7:
    [dc] when the deviation is high-side or within, [-.dc] when low-side
    with partial overlap, and [±1] marks a complete conflict (so a fully
    deviant low-side measurement prints [-1], as in the paper).  Note the
    paper's convention is ambiguous for high-side complete conflicts
    (they print [+1], indistinguishable from consistency); use {!verdict}
    for unambiguous reporting. *)

val classify : Interval.t -> Interval.t -> coincidence
(** [classify a b] determines the coincidence case of fig. 4 between two
    values of the same quantity. *)

val nogood_degree : measured:Interval.t -> nominal:Interval.t -> float
(** [1 - dc]: the degree with which the supporting assumption set is a
    nogood (0 = fully consistent, 1 = hard conflict). *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_coincidence : Format.formatter -> coincidence -> unit
