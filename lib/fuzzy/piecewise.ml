let breakpoints (v : Interval.t) =
  let lo, hi = Interval.support v in
  let pts = [ lo; v.Interval.m1; v.Interval.m2; hi ] in
  List.sort_uniq Float.compare pts

(* Membership of a trapezoid is linear on every interval between
   consecutive breakpoints of BOTH operands; inside such an interval the
   pointwise min/max of the two linear pieces is integrated exactly,
   splitting once at the crossing point if the pieces intersect. *)

let merged_breakpoints a b =
  List.sort_uniq Float.compare (breakpoints a @ breakpoints b)

let segment_integral f g lo hi =
  (* Integral of [min (f x) (g x)] and [max (f x) (g x)] over [lo, hi],
     where f and g are linear on the OPEN interval (lo, hi).  Membership
     functions with zero-width flanks jump at their breakpoints, so the
     endpoint values cannot be read at lo/hi directly: two interior
     samples determine the line and extrapolate to the one-sided limits
     (a jump at an endpoint has measure zero and must not contribute). *)
  if hi <= lo then (0., 0.)
  else
    let x1 = lo +. ((hi -. lo) /. 3.) and x2 = hi -. ((hi -. lo) /. 3.) in
    let limits f =
      let f1 = f x1 and f2 = f x2 in
      ((2. *. f1) -. f2, (2. *. f2) -. f1)
    in
    let fl, fh = limits f and gl, gh = limits g in
    let trap y0 y1 = (y0 +. y1) /. 2. *. (hi -. lo) in
    let dl = fl -. gl and dh = fh -. gh in
    if dl *. dh >= 0. then
      (* no crossing inside: one function dominates throughout *)
      let min_i = trap (Float.min fl gl) (Float.min fh gh)
      and max_i = trap (Float.max fl gl) (Float.max fh gh) in
      (min_i, max_i)
    else
      (* crossing at lo + t * (hi - lo) with t = dl / (dl - dh) *)
      let t = dl /. (dl -. dh) in
      let xm = lo +. (t *. (hi -. lo)) in
      let ym = fl +. ((fh -. fl) *. t) in
      let trap_on x0 x1 y0 y1 = (y0 +. y1) /. 2. *. (x1 -. x0) in
      let min_i =
        trap_on lo xm (Float.min fl gl) ym +. trap_on xm hi ym (Float.min fh gh)
      and max_i =
        trap_on lo xm (Float.max fl gl) ym +. trap_on xm hi ym (Float.max fh gh)
      in
      (min_i, max_i)

let areas a b =
  let pts = merged_breakpoints a b in
  let f = Interval.membership a and g = Interval.membership b in
  let rec loop acc_min acc_max = function
    | x0 :: (x1 :: _ as rest) ->
      let mi, ma = segment_integral f g x0 x1 in
      loop (acc_min +. mi) (acc_max +. ma) rest
    | [ _ ] | [] -> (acc_min, acc_max)
  in
  loop 0. 0. pts

let min_area a b = fst (areas a b)
let max_area a b = snd (areas a b)

let height_of_min a b =
  let pts = merged_breakpoints a b in
  let f = Interval.membership a and g = Interval.membership b in
  let at x = Float.min (f x) (g x) in
  (* the maximum of a piecewise-linear function is reached at a breakpoint
     or at a crossing of the two pieces *)
  let rec crossings acc = function
    | x0 :: (x1 :: _ as rest) ->
      let dl = f x0 -. g x0 and dh = f x1 -. g x1 in
      let acc =
        if dl *. dh < 0. then
          let t = dl /. (dl -. dh) in
          (x0 +. (t *. (x1 -. x0))) :: acc
        else acc
      in
      crossings acc rest
    | [ _ ] | [] -> acc
  in
  let candidates = pts @ crossings [] pts in
  List.fold_left (fun best x -> Float.max best (at x)) 0. candidates

let intersection_hull (a : Interval.t) (b : Interval.t) =
  let alo, ahi = Interval.support a and blo, bhi = Interval.support b in
  let slo = Float.max alo blo and shi = Float.min ahi bhi in
  if slo > shi then None
  else
    let clo = Float.max a.Interval.m1 b.Interval.m1
    and chi = Float.min a.Interval.m2 b.Interval.m2 in
    let clo, chi =
      if clo <= chi then (clo, chi)
      else
        (* cores disjoint: peak of the min function sits where the facing
           flanks cross; collapse the core to that abscissa *)
        let x =
          if a.Interval.m2 < b.Interval.m1 then
            (* a left of b: right flank of a meets left flank of b *)
            let xa = a.Interval.m2 +. a.Interval.beta
            and xb = b.Interval.m1 -. b.Interval.alpha in
            Float.max slo (Float.min shi ((xa +. xb) /. 2.))
          else
            let xa = a.Interval.m1 -. a.Interval.alpha
            and xb = b.Interval.m2 +. b.Interval.beta in
            Float.max slo (Float.min shi ((xa +. xb) /. 2.))
        in
        (x, x)
    in
    let clo = Float.max clo slo and chi = Float.min chi shi in
    Some (Interval.make ~m1:clo ~m2:chi ~alpha:(clo -. slo) ~beta:(shi -. chi))
