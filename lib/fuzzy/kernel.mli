(** Allocation-light scalar kernels for the compiled propagation path.

    Bit-identical replicas of the {!Piecewise} / {!Consistency}
    operations the propagation inner loop spends its time in, written
    over a scratch array of the (at most 8) merged trapezoid corners
    instead of sorted lists and closures.  The compiled engine relies on
    these being byte-for-byte equal to the interpreter's results — the
    equivalence is enforced by property tests in [test_fuzzy]. *)

val fill_breakpoints : float array -> Interval.t -> Interval.t -> int
(** [fill_breakpoints pts a b] writes the merged breakpoints of [a] and
    [b] into [pts] (which must have length >= 8) in ascending
    [Float.compare] order with duplicates removed, and returns the
    count.  Same sequence as {!Piecewise.breakpoints} merged via
    [List.sort_uniq]. *)

val height_of_min : ?scratch:float array -> Interval.t -> Interval.t -> float
(** Bit-identical to {!Piecewise.height_of_min}.  [?scratch] (length >=
    8) is clobbered when supplied; a fresh array is used otherwise. *)

val min_area : ?scratch:float array -> Interval.t -> Interval.t -> float
(** Bit-identical to {!Piecewise.min_area}; [?scratch] as above. *)

val dc :
  ?scratch:float array -> measured:Interval.t -> nominal:Interval.t -> unit -> float
(** Bit-identical to {!Consistency.dc}; [?scratch] as above. *)

val consist :
  scratch:float array -> measured:Interval.t -> nominal:Interval.t -> float
(** The engine's fused coincidence degree,
    [Float.max (dc ~measured ~nominal) (height_of_min measured nominal)],
    computed over a single breakpoint merge.  Bit-identical to computing
    the two parts separately. *)
