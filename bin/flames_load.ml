(* Load generator for the diagnosis service: seeded concurrent clients,
   a saturation sweep over client counts, exact latency percentiles and
   a BENCH_serve.json report.  --spawn runs the server in-process on an
   ephemeral port, so CI needs no background process or port pick. *)

module Server = Flames_serve.Server
module Loadgen = Flames_serve.Loadgen

open Cmdliner

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("flames_load: " ^ m);
      exit 2)
    fmt

let levels_conv =
  let parse s =
    let parts =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun p -> p <> "")
    in
    let numeric = List.map int_of_string_opt parts in
    if parts = [] || List.exists Option.is_none numeric then
      Error (`Msg (Printf.sprintf "bad client levels %S (want e.g. 1,2,4)" s))
    else begin
      let levels = List.filter_map Fun.id numeric in
      if List.exists (fun n -> n < 1) levels then
        Error (`Msg "client levels must be >= 1")
      else Ok levels
    end
  in
  let print ppf levels =
    Format.fprintf ppf "%s"
      (String.concat "," (List.map string_of_int levels))
  in
  Arg.conv (parse, print)

let print_level (s : Loadgen.level_stats) =
  Printf.eprintf
    "clients %3d: %5d req %7.1f req/s  ok %5d shed %4d err %d proto %d  p50 \
     %.1f ms p95 %.1f ms p99 %.1f ms\n\
     %!"
    s.Loadgen.clients s.Loadgen.requests s.Loadgen.throughput_rps s.Loadgen.ok
    s.Loadgen.shed s.Loadgen.errors s.Loadgen.protocol_errors s.Loadgen.p50_ms
    s.Loadgen.p95_ms s.Loadgen.p99_ms

let run host port levels duration seed json_path spawn workers max_inflight
    quota_rate quota_burst wide_events =
  if duration <= 0. then die "--duration must be > 0 (got %g)" duration;
  if wide_events <> None && not spawn then
    die "--wide-events records the spawned server's events; add --spawn";
  Option.iter
    (fun path ->
      let close = Flames_obs.Events.file_sink path in
      at_exit close)
    wide_events;
  if spawn && port <> 0 then
    die "--spawn picks an ephemeral port; drop --port %d" port;
  if (not spawn) && port = 0 then die "--port is required without --spawn";
  let server =
    if spawn then begin
      let config =
        {
          Server.default_config with
          host;
          port = 0;
          workers;
          max_inflight;
          quota_rate;
          quota_burst;
        }
      in
      Some (Server.start ~config ())
    end
    else None
  in
  let port = match server with Some s -> Server.port s | None -> port in
  Printf.eprintf "flames_load: %s:%d seed %d, %g s per level, levels %s%s\n%!"
    host port seed duration
    (String.concat "," (List.map string_of_int levels))
    (if spawn then
       Printf.sprintf " (spawned server: %d workers, max-inflight %d)" workers
         max_inflight
     else "");
  let report =
    Fun.protect
      ~finally:(fun () -> Option.iter Server.stop server)
      (fun () ->
        Loadgen.sweep ~progress:print_level ~host ~port ~seed ~duration levels)
  in
  Option.iter
    (fun path ->
      Loadgen.write_json path report;
      Printf.eprintf "flames_load: wrote %s\n%!" path)
    json_path;
  let protocol_errors =
    List.fold_left
      (fun acc (s : Loadgen.level_stats) -> acc + s.Loadgen.protocol_errors)
      0 report.Loadgen.levels
  in
  if protocol_errors > 0 then begin
    Printf.eprintf "flames_load: %d protocol errors\n%!" protocol_errors;
    exit 1
  end

let main =
  let host_arg =
    let doc = "Server address." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let port_arg =
    let doc = "Server port (required unless --spawn)." in
    Arg.(value & opt int 0 & info [ "port"; "p" ] ~docv:"PORT" ~doc)
  in
  let levels_arg =
    let doc = "Comma-separated client counts for the saturation sweep." in
    Arg.(
      value
      & opt levels_conv [ 1; 2; 4; 8 ]
      & info [ "levels" ] ~docv:"N,N,..." ~doc)
  in
  let duration_arg =
    let doc = "Seconds to run each level." in
    Arg.(value & opt float 5. & info [ "duration"; "d" ] ~docv:"S" ~doc)
  in
  let seed_arg =
    let doc = "Root seed of the request streams (deterministic per seed)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let json_arg =
    let doc = "Write the BENCH_serve.json report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let spawn_arg =
    let doc =
      "Start the server in-process on an ephemeral port and tear it down \
       after the sweep."
    in
    Arg.(value & flag & info [ "spawn" ] ~doc)
  in
  let workers_arg =
    let doc = "Workers of the spawned server (with --spawn)." in
    Arg.(value & opt int 1 & info [ "workers"; "j" ] ~docv:"N" ~doc)
  in
  let inflight_arg =
    let doc = "Admission bound of the spawned server (with --spawn)." in
    Arg.(value & opt int 4 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let quota_rate_arg =
    let doc = "Per-client quota of the spawned server (with --spawn)." in
    Arg.(value & opt float 0. & info [ "quota-rate" ] ~docv:"RPS" ~doc)
  in
  let quota_burst_arg =
    let doc = "Quota burst of the spawned server (with --spawn)." in
    Arg.(value & opt float 10. & info [ "quota-burst" ] ~docv:"N" ~doc)
  in
  let wide_events_arg =
    let doc =
      "Append the spawned server's wide events to $(docv) as JSON lines \
       (with --spawn; filter with 'flames tail')."
    in
    Arg.(
      value & opt (some string) None & info [ "wide-events" ] ~docv:"FILE" ~doc)
  in
  let info =
    Cmd.info "flames_load" ~version:Flames_serve.Version.current
      ~doc:
        "Drive a flames diagnosis service with seeded synthetic clients \
         and report throughput, exact latency percentiles and shed counts \
         per client-count level.  Exits 1 when any protocol error \
         occurred (429 sheds are expected past saturation, not errors)."
  in
  Cmd.v info
    Term.(
      const run $ host_arg $ port_arg $ levels_arg $ duration_arg $ seed_arg
      $ json_arg $ spawn_arg $ workers_arg $ inflight_arg $ quota_rate_arg
      $ quota_burst_arg $ wide_events_arg)

let () = exit (Cmd.eval main)
