(* FLAMES command-line interface: simulate, inject faults, diagnose and
   plan tests on the built-in circuits. *)

module I = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module Fault = Flames_circuit.Fault
module Library = Flames_circuit.Library

(* The built-in circuit catalog lives in the library so the diagnosis
   service serves exactly the same names. *)
let circuits = Library.builtins

let load_circuit name =
  match List.assoc_opt name circuits with
  | Some f -> Ok (f ())
  | None ->
    if Sys.file_exists name then
      match Flames_circuit.Parser.parse_file name with
      | Ok netlist -> Ok netlist
      | Error e ->
        Error
          (Format.asprintf "%s: %a" name Flames_circuit.Parser.pp_error e)
    else
      Error
        (Printf.sprintf
           "unknown circuit %S (available: %s, or a netlist file path)" name
           (String.concat ", " (List.map fst circuits)))

let parse_fault = Fault.of_spec

open Cmdliner
module Obs_log = Flames_obs.Log
module Err = Flames_core.Err

(* Exit discipline.  Malformed input — unknown circuit, unparsable
   netlist or scenario file, bad fault spec — exits 2 with a one-line
   message naming the file (and line, when there is one).  A run that
   failed for computational reasons — singular system, tripped check —
   exits 1, also on one line.  No exception may escape to a raw
   backtrace: [protect] converts anything a library raises into its
   structured {!Err.t} rendering. *)
let die_input fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("flames: " ^ m);
      exit 2)
    fmt

let die_run fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("flames: " ^ m);
      exit 1)
    fmt

let protect f =
  try f () with e -> die_run "%s" (Err.to_string (Err.of_exn e))

(* --trace/--metrics/--quiet/-v are shared by every subcommand: the term
   performs its side effects (log level, tracer arming, at_exit
   exporters) during argument evaluation and yields (), which each
   command's run function consumes first. *)
let obs_term =
  let trace_arg =
    let doc =
      "Record a span trace of the whole run and write it to $(docv) as \
       Chrome trace_event JSON (open in Perfetto, ui.perfetto.dev, or \
       about:tracing)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc = "Print the metrics-registry summary on stderr at exit." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let quiet_arg =
    let doc = "Only log errors." in
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc)
  in
  let verbose_arg =
    let doc = "Increase log verbosity (repeatable: -v info, -vv debug)." in
    Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)
  in
  let setup trace metrics quiet verbose =
    Obs_log.set_level
      (if quiet then Obs_log.Error
       else
         match List.length verbose with
         | 0 -> Obs_log.Warn
         | 1 -> Obs_log.Info
         | _ -> Obs_log.Debug);
    (* at_exit so the dumps also cover runs that fail and [exit 1] *)
    Option.iter
      (fun path ->
        Flames_obs.Trace.start ();
        at_exit (fun () ->
            Flames_obs.Trace.stop ();
            Flames_obs.Export.write_chrome_trace path;
            Obs_log.info "trace: %d events -> %s"
              (Flames_obs.Trace.event_count ())
              path))
      trace;
    if metrics then
      at_exit (fun () ->
          Flames_obs.Export.summary Format.err_formatter;
          Format.pp_print_flush Format.err_formatter ())
  in
  Term.(const setup $ trace_arg $ metrics_arg $ quiet_arg $ verbose_arg)

(* --wide-events is shared by the commands that emit per-request /
   per-step wide events (serve, batch, troubleshoot): it installs a
   JSON-lines sink for the run and closes it at exit. *)
let wide_events_term =
  let arg =
    let doc =
      "Append one JSON wide event per request / session step / batch job \
       to $(docv) (one object per line; filter with 'flames tail')."
    in
    Arg.(
      value & opt (some string) None & info [ "wide-events" ] ~docv:"FILE" ~doc)
  in
  let setup = function
    | None -> ()
    | Some path ->
      let close = Flames_obs.Events.file_sink path in
      at_exit close
  in
  Term.(const setup $ arg)

let circuit_arg =
  let doc =
    Printf.sprintf "Circuit to operate on: %s, or a path to a netlist file."
      (String.concat ", " (List.map fst circuits))
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let fault_arg =
  let doc =
    "Fault to inject, as comp.param=mode; mode is short, open, low, high \
     or a numeric value (e.g. r2.R=short, t2.beta=194)."
  in
  Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC" ~doc)

let probes_arg =
  let doc = "Node to probe (repeatable); default: every node." in
  Arg.(value & opt_all string [] & info [ "probe" ] ~docv:"NODE" ~doc)

let trusted_arg =
  let doc = "Component assumed correct a priori (repeatable)." in
  Arg.(value & opt_all string [] & info [ "trust" ] ~docv:"COMP" ~doc)

let instrument_arg =
  let doc = "Relative measurement imprecision (default 0.002)." in
  Arg.(value & opt float 0.002 & info [ "imprecision" ] ~doc)

let no_compiled_arg =
  let doc =
    "Run the propagation interpreter instead of the compiled schedule. \
     Results are bit-identical (the differential oracle enforces it); \
     this is the baseline for checks and benchmarks."
  in
  Arg.(value & flag & info [ "no-compiled" ] ~doc)

let with_circuit name f =
  match load_circuit name with
  | Ok netlist -> protect (fun () -> f netlist)
  | Error e -> die_input "%s" e

let inject_opt netlist = function
  | None -> Ok netlist
  | Some spec -> begin
    match parse_fault spec with
    | Ok fault -> begin
      match Fault.inject netlist fault with
      | net -> Ok net
      | exception Not_found ->
        Error (Printf.sprintf "no such component/parameter in %S" spec)
    end
    | Error e -> Error e
  end

let observations netlist probes relative =
  let sol = Flames_sim.Mna.solve netlist in
  let nodes =
    match probes with
    | [] ->
      List.filter_map
        (fun q ->
          match q with
          | Q.Node_voltage n -> Some n
          | Q.Branch_current _ | Q.Terminal_current _ | Q.Voltage_drop _
          | Q.Parameter _ ->
            None)
        (Library.probe_points netlist)
    | ps -> ps
  in
  let instrument = { Flames_sim.Measure.relative; floor = 5e-4 } in
  Flames_sim.Measure.probe_all ~instrument sol (List.map Q.voltage nodes)

let bias_cmd =
  let run () name =
    with_circuit name (fun netlist ->
        let sol = Flames_sim.Mna.solve netlist in
        Format.printf "%a" Flames_sim.Mna.pp sol)
  in
  Cmd.v (Cmd.info "bias" ~doc:"Print the DC operating point.")
    Term.(const run $ obs_term $ circuit_arg)

let diagnose_cmd =
  let run () name fault probes trusted relative no_compiled =
    with_circuit name (fun nominal ->
        match inject_opt nominal fault with
        | Error e -> die_input "%s" e
        | Ok faulty ->
          let obs = observations faulty probes relative in
          let config =
            { Flames_core.Model.default_config with trusted }
          in
          let result =
            Flames_core.Diagnose.run ~config
              ~use_compiled:(not no_compiled) nominal obs
          in
          Format.printf "%a" Flames_core.Report.pp_result result;
          Format.printf "%s@." (Flames_core.Report.summary result))
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:"Simulate the (faulty) circuit, probe it and run the diagnosis.")
    Term.(
      const run $ obs_term $ circuit_arg $ fault_arg $ probes_arg
      $ trusted_arg $ instrument_arg $ no_compiled_arg)

let best_test_cmd =
  let run () name fault probes trusted relative =
    with_circuit name (fun nominal ->
        match inject_opt nominal fault with
        | Error e -> die_input "%s" e
        | Ok faulty ->
          let obs = observations faulty probes relative in
          let config = { Flames_core.Model.default_config with trusted } in
          let result = Flames_core.Diagnose.run ~config nominal obs in
          let estimations = Flames_strategy.Estimation.of_diagnosis result in
          let probed =
            List.map (fun (q, _) -> q) obs
          in
          let tests =
            Flames_strategy.Best_test.test_points_of_netlist nominal
            |> List.filter (fun (t : Flames_strategy.Best_test.test_point) ->
                   not
                     (List.exists
                        (Q.equal t.Flames_strategy.Best_test.quantity)
                        probed))
          in
          let ranking = Flames_strategy.Best_test.rank estimations tests in
          List.iter
            (fun e ->
              Format.printf "%a@." Flames_strategy.Best_test.pp_evaluation e)
            ranking)
  in
  Cmd.v
    (Cmd.info "best-test"
       ~doc:"Rank the unprobed nodes by fuzzy expected entropy.")
    Term.(
      const run $ obs_term $ circuit_arg $ fault_arg $ probes_arg
      $ trusted_arg $ instrument_arg)

let show_cmd =
  let run () name =
    with_circuit name (fun netlist ->
        print_string (Flames_circuit.Parser.to_string netlist))
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print the circuit in the netlist text format.")
    Term.(const run $ obs_term $ circuit_arg)

let frequencies_arg =
  let doc = "Frequency in hertz (repeatable)." in
  Arg.(value & opt_all float [ 100.; 1000.; 10000. ]
       & info [ "freq" ] ~docv:"HZ" ~doc)

let node_arg =
  let doc = "Output node to report (default: every node)." in
  Arg.(value & opt (some string) None & info [ "node" ] ~docv:"NODE" ~doc)

let ac_cmd =
  let run () name fault frequencies node =
    with_circuit name (fun nominal ->
        match inject_opt nominal fault with
        | Error e -> die_input "%s" e
        | Ok netlist ->
          List.iter
            (fun f ->
              match Flames_sim.Ac.solve netlist f with
              | r ->
                let nodes =
                  match node with
                  | Some n -> [ n ]
                  | None ->
                    List.filter
                      (fun n -> n <> netlist.Flames_circuit.Netlist.ground)
                      (Flames_circuit.Netlist.nodes netlist)
                in
                List.iter
                  (fun n ->
                    Format.printf "%10.2f Hz  |V(%s)| = %.6g  (%.2f dB)@." f n
                      (Flames_sim.Ac.magnitude r n)
                      (Flames_sim.Ac.gain_db r n))
                  nodes
              | exception Flames_sim.Ac.Unsupported m ->
                die_run "AC analysis unsupported: %s" m)
            frequencies)
  in
  Cmd.v
    (Cmd.info "ac" ~doc:"Print the small-signal frequency response.")
    Term.(
      const run $ obs_term $ circuit_arg $ fault_arg $ frequencies_arg
      $ node_arg)

let dynamic_diagnose_cmd =
  let run () name fault frequencies node relative trusted =
    with_circuit name (fun nominal ->
        match inject_opt nominal fault with
        | Error e -> die_input "%s" e
        | Ok faulty ->
          let node =
            match node with
            | Some n -> n
            | None -> die_input "dynamic-diagnose requires --node"
          in
          let instrument = { Flames_sim.Measure.relative; floor = 5e-4 } in
          let observations =
            List.map
              (fun frequency ->
                Flames_core.Dynamic.observe ~instrument faulty ~node
                  ~frequency)
              frequencies
          in
          let result =
            Flames_core.Dynamic.run ~trusted nominal observations
          in
          Format.printf "%a" Flames_core.Dynamic.pp_result result)
  in
  Cmd.v
    (Cmd.info "dynamic-diagnose"
       ~doc:
         "Measure output magnitudes of the (faulty) circuit at the given           frequencies and run the frequency-domain diagnosis.")
    Term.(
      const run $ obs_term $ circuit_arg $ fault_arg $ frequencies_arg
      $ node_arg $ instrument_arg $ trusted_arg)

(* batch scenario files: one job per line,
     <circuit> [comp.param=mode] [probe,probe,...]
   where <circuit> is a built-in name or a netlist file path; '#' starts
   a comment.  Fields after the circuit are recognised by shape (a fault
   spec contains '='). *)
let parse_batch_line lineno line =
  match String.split_on_char '#' line with
  | [] -> Ok None
  | code :: _ -> begin
    match
      String.split_on_char ' ' code
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun f -> f <> "")
    with
    | [] -> Ok None
    | circuit :: fields ->
      let fault, probes =
        List.partition (fun f -> String.contains f '=') fields
      in
      let fault = match fault with [] -> None | spec :: _ -> Some spec in
      let probes =
        List.concat_map (String.split_on_char ',') probes
        |> List.filter (fun p -> p <> "")
      in
      (match load_circuit circuit with
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
      | Ok nominal -> begin
        match inject_opt nominal fault with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok faulty ->
          let label =
            match fault with
            | Some spec -> Printf.sprintf "%s %s" circuit spec
            | None -> circuit
          in
          Ok (Some (label, nominal, faulty, probes))
      end)
  end

let read_batch_file path =
  let ic = open_in path in
  let rec loop lineno acc =
    match input_line ic with
    | line -> begin
      match parse_batch_line lineno line with
      | Ok None -> loop (lineno + 1) acc
      | Ok (Some job) -> loop (lineno + 1) (job :: acc)
      | Error e ->
        close_in ic;
        Error e
    end
    | exception End_of_file ->
      close_in ic;
      Ok (List.rev acc)
  in
  loop 1 []

let workers_arg =
  let doc = "Worker domains for the batch engine (default 4)." in
  Arg.(value & opt int 4 & info [ "workers"; "j" ] ~docv:"N" ~doc)

let timeout_arg =
  let doc = "Per-job timeout in seconds (default: none)." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"S" ~doc)

let file_arg =
  let doc =
    "Scenario list: one 'circuit [comp.param=mode] [probe,probe,...]' per \
     line, '#' comments.  Without a file, the paper's five fig-7 defect \
     scenarios are run."
  in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let stats_json_arg =
  let doc =
    "Also write the run statistics to $(docv) as JSON (same schema as the \
     bench harness's BENCH_*.json rows)."
  in
  Arg.(
    value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

let batch_cmd =
  let run () () file workers timeout trusted relative stats_json no_compiled =
    if workers < 1 then
      die_input "batch: --workers must be >= 1 (got %d)" workers;
    protect @@ fun () ->
    let jobs =
      match file with
      | None -> Flames_experiments.Fig7.jobs ()
      | Some path -> begin
        match read_batch_file path with
        | Error e -> die_input "%s: %s" path e
        | Ok lines ->
          let config = { Flames_core.Model.default_config with trusted } in
          List.map
            (fun (label, nominal, faulty, probes) ->
              let obs = observations faulty probes relative in
              Flames_engine.Batch.job ~label ~config nominal obs)
            lines
      end
    in
    let cache = Flames_engine.Cache.create () in
    let outcomes, stats =
      Flames_engine.Batch.run ~workers ~cache ?timeout
        ~use_compiled:(not no_compiled) jobs
    in
    List.iter2
      (fun (j : Flames_engine.Batch.job) outcome ->
        Format.printf "%-24s %a@." j.Flames_engine.Batch.label
          Flames_engine.Batch.pp_outcome outcome)
      jobs outcomes;
    Format.printf "%a@." Flames_engine.Stats.pp stats;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Flames_engine.Stats.to_json stats);
        output_char oc '\n';
        close_out oc;
        Obs_log.info "stats: wrote %s" path)
      stats_json;
    if List.exists Result.is_error outcomes then exit 1
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Diagnose a list of fault scenarios concurrently on the \
          domain-pool batch engine, with model-compilation caching, and \
          print per-job summaries plus engine statistics.")
    Term.(
      const run $ obs_term $ wide_events_term $ file_arg $ workers_arg
      $ timeout_arg $ trusted_arg $ instrument_arg $ stats_json_arg
      $ no_compiled_arg)

let list_cmd =
  let run () =
    List.iter (fun (name, _) -> print_endline name) circuits
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in circuits.")
    Term.(const run $ obs_term)

let obs_demo_cmd =
  let run () workers =
    protect @@ fun () ->
    let rows, stats = Flames_experiments.Fig7.run_parallel ~workers () in
    Flames_experiments.Fig7.print Format.std_formatter rows;
    Format.printf "%a@.@." Flames_engine.Stats.pp stats;
    Flames_obs.Export.summary Format.std_formatter
  in
  let workers_arg =
    let doc = "Worker domains for the demo sweep (default 2)." in
    Arg.(value & opt int 2 & info [ "workers"; "j" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "obs-demo"
       ~doc:
         "Observability showcase: run the paper's fig-7 defect sweep on \
          the batch engine and print the metrics-registry summary.  Add \
          --trace FILE to capture a Chrome trace with one track per \
          worker domain, and --metrics for the registry dump on stderr.")
    Term.(const run $ obs_term $ workers_arg)

let check_cmd =
  let run () iters seed corpus_dir write_corpus skip_corpus =
    if iters < 1 then
      die_input "check: --iters must be >= 1 (got %d)" iters;
    protect @@ fun () ->
    if write_corpus then begin
      let written = Flames_check.Corpus.write ~dir:corpus_dir in
      List.iter (Format.printf "wrote %s@.") written
    end;
    let sections =
      Flames_check.Runner.run_all ?seed ~log:print_endline ~iters ()
    in
    let sweep_ok = Flames_check.Runner.ok sections in
    if not sweep_ok then
      Format.printf "@.%a" Flames_check.Runner.pp sections;
    let corpus_ok =
      if skip_corpus || write_corpus then true
      else begin
        let reports = Flames_check.Corpus.check ~dir:corpus_dir in
        List.iter
          (fun r ->
            Format.printf "corpus %a@." Flames_check.Corpus.pp_report r)
          reports;
        Flames_check.Corpus.ok reports
      end
    in
    if sweep_ok && corpus_ok then Format.printf "check: all sections ok@."
    else die_run "check: FAILED"
  in
  let iters_arg =
    let doc = "Random cases per oracle section (default 200)." in
    Arg.(value & opt int 200 & info [ "iters" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Root seed of the sweep; reuse the seed printed by a failure to \
       reproduce it exactly."
    in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let corpus_arg =
    let doc = "Directory of the golden snapshot corpus." in
    Arg.(value & opt string "corpus" & info [ "corpus" ] ~docv:"DIR" ~doc)
  in
  let write_arg =
    let doc =
      "(Re)render the golden corpus into the corpus directory instead of \
       diffing against it."
    in
    Arg.(value & flag & info [ "write-corpus" ] ~doc)
  in
  let skip_arg =
    let doc = "Run only the randomised sweep, skip the corpus diff." in
    Arg.(value & flag & info [ "no-corpus" ] ~doc)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Deep verification sweep: differential oracles (hitting sets, \
          fuzzy arithmetic, consistency, MNA, batch determinism), ATMS \
          and diagnosis invariants on random circuits, and the golden \
          snapshot corpus of the amplifier experiments.")
    Term.(
      const run $ obs_term $ iters_arg $ seed_arg $ corpus_arg $ write_arg
      $ skip_arg)

let chaos_cmd =
  let run () iters seed jobs workers =
    if iters < 1 then die_input "chaos: --iters must be >= 1 (got %d)" iters;
    if jobs < 1 then die_input "chaos: --jobs must be >= 1 (got %d)" jobs;
    if workers < 1 then
      die_input "chaos: --workers must be >= 1 (got %d)" workers;
    protect @@ fun () ->
    let config = { Flames_check.Chaos.default with jobs; workers } in
    let failures = ref 0 in
    for case = 0 to iters - 1 do
      let case_seed = Flames_check.Rng.case_seed ~seed ~case in
      match Flames_check.Chaos.run ~config:{ config with seed = case_seed } ()
      with
      | Ok report ->
        if case = 0 then
          Format.printf "%a@." Flames_check.Chaos.pp_report report
      | Error m ->
        incr failures;
        (* the seed is the whole reproduction recipe: print it *)
        Format.eprintf "chaos: case %d FAILED (replay with --seed %d): %s@."
          case case_seed m
    done;
    if !failures = 0 then
      Format.printf "chaos: %d cases ok (root seed %d)@." iters seed
    else
      die_run "chaos: %d/%d cases failed (root seed %d)" !failures iters seed
  in
  let iters_arg =
    let doc = "Chaotic batches to run (default 10)." in
    Arg.(value & opt int 10 & info [ "iters" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Root seed; reuse the seed printed by a failing case to replay it."
    in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let jobs_arg =
    let doc = "Jobs per chaotic batch (default 8)." in
    Arg.(value & opt int 8 & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let workers_arg =
    let doc = "Worker domains per batch (default 3)." in
    Arg.(value & opt int 3 & info [ "workers"; "j" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Chaos harness: run seeded batches of random diagnoses with \
          injected faults (exceptions, worker kills, singular systems, \
          NaN measurements, delays) through the full resilience stack — \
          budgets, retry, circuit breaker, worker supervision — and \
          check every resilience invariant.  Deterministic per seed.")
    Term.(
      const run $ obs_term $ iters_arg $ seed_arg $ jobs_arg $ workers_arg)

let serve_cmd =
  let module Server = Flames_serve.Server in
  let run () () flight_dump host port workers max_inflight quota_rate
      quota_burst max_body default_wall max_wall session_cap session_ttl
      journal fsync fsync_interval journal_segment_bytes =
    if workers < 1 then
      die_input "serve: --workers must be >= 1 (got %d)" workers;
    if max_inflight < 1 then
      die_input "serve: --max-inflight must be >= 1 (got %d)" max_inflight;
    if max_body < 1 then
      die_input "serve: --max-body must be >= 1 (got %d)" max_body;
    if session_cap < 1 then
      die_input "serve: --session-cap must be >= 1 (got %d)" session_cap;
    if session_ttl <= 0. then
      die_input "serve: --session-ttl must be > 0 (got %g)" session_ttl;
    if fsync_interval <= 0. then
      die_input "serve: --fsync-interval must be > 0 (got %g)" fsync_interval;
    if journal_segment_bytes < 4096 then
      die_input "serve: --journal-segment-bytes must be >= 4096 (got %d)"
        journal_segment_bytes;
    let journal_fsync =
      match fsync with
      | "always" -> Flames_store.Journal.Always
      | "interval" -> Flames_store.Journal.Interval fsync_interval
      | "never" -> Flames_store.Journal.Never
      | other ->
        die_input "serve: --fsync must be always, interval or never (got %S)"
          other
    in
    protect @@ fun () ->
    Flames_obs.Recorder.arm_crash_dump flight_dump;
    let config =
      {
        Server.default_config with
        host;
        port;
        workers;
        max_inflight;
        quota_rate;
        quota_burst;
        max_body;
        default_wall;
        max_wall;
        session_cap;
        session_ttl;
        journal_dir = journal;
        journal_fsync;
        journal_segment_bytes;
      }
    in
    Server.run ~config ()
  in
  let d = Server.default_config in
  let host_arg =
    let doc = "Address to bind." in
    Arg.(value & opt string d.Server.host & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let port_arg =
    let doc = "Port to bind (0 = ephemeral)." in
    Arg.(value & opt int d.Server.port & info [ "port"; "p" ] ~docv:"PORT" ~doc)
  in
  let workers_arg =
    let doc = "Worker domains running diagnoses." in
    Arg.(
      value & opt int d.Server.workers & info [ "workers"; "j" ] ~docv:"N" ~doc)
  in
  let inflight_arg =
    let doc =
      "Admission bound: requests admitted but unanswered before new ones \
       are shed with 429."
    in
    Arg.(
      value
      & opt int d.Server.max_inflight
      & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let quota_rate_arg =
    let doc =
      "Per-client diagnosis quota in requests/second (X-Flames-Client \
       header; 0 disables quotas)."
    in
    Arg.(
      value
      & opt float d.Server.quota_rate
      & info [ "quota-rate" ] ~docv:"RPS" ~doc)
  in
  let quota_burst_arg =
    let doc = "Per-client quota burst (token-bucket size)." in
    Arg.(
      value
      & opt float d.Server.quota_burst
      & info [ "quota-burst" ] ~docv:"N" ~doc)
  in
  let max_body_arg =
    let doc = "Request-body size limit in bytes (413 beyond)." in
    Arg.(
      value & opt int d.Server.max_body & info [ "max-body" ] ~docv:"BYTES" ~doc)
  in
  let default_wall_arg =
    let doc = "Default per-request diagnosis budget in seconds." in
    Arg.(
      value
      & opt float d.Server.default_wall
      & info [ "default-wall" ] ~docv:"S" ~doc)
  in
  let max_wall_arg =
    let doc = "Cap on the client-requested budget_ms, in seconds." in
    Arg.(
      value & opt float d.Server.max_wall & info [ "max-wall" ] ~docv:"S" ~doc)
  in
  let session_cap_arg =
    let doc =
      "Live troubleshooting sessions held at once (POST /session/create \
       answers 429 beyond)."
    in
    Arg.(
      value
      & opt int d.Server.session_cap
      & info [ "session-cap" ] ~docv:"N" ~doc)
  in
  let session_ttl_arg =
    let doc = "Idle troubleshooting-session expiry, in seconds." in
    Arg.(
      value
      & opt float d.Server.session_ttl
      & info [ "session-ttl" ] ~docv:"S" ~doc)
  in
  let flight_dump_arg =
    let doc =
      "Where to dump the flight recorder (last wide events + trace spans) \
       on an uncaught exception."
    in
    Arg.(
      value
      & opt string "flames-flight.json"
      & info [ "flight-dump" ] ~docv:"FILE" ~doc)
  in
  let journal_arg =
    let doc =
      "Session journal directory: every mutating /session/* step is \
       written ahead of its reply, a restart replays the journal so \
       sessions survive kill -9, and SIGTERM snapshots them on drain.  \
       Omit to keep sessions in memory only."
    in
    Arg.(
      value & opt (some string) None & info [ "journal" ] ~docv:"DIR" ~doc)
  in
  let fsync_arg =
    let doc =
      "Journal durability: $(b,always) fsyncs every step before its \
       reply, $(b,interval) fsyncs at most every --fsync-interval \
       seconds, $(b,never) leaves it to the OS."
    in
    Arg.(value & opt string "interval" & info [ "fsync" ] ~docv:"MODE" ~doc)
  in
  let fsync_interval_arg =
    let doc = "Seconds between journal fsyncs when --fsync=interval." in
    Arg.(
      value & opt float 0.05 & info [ "fsync-interval" ] ~docv:"S" ~doc)
  in
  let journal_segment_bytes_arg =
    let doc =
      "Journal segment size before rotation compacts the live sessions \
       into a fresh segment."
    in
    Arg.(
      value
      & opt int d.Server.journal_segment_bytes
      & info [ "journal-segment-bytes" ] ~docv:"BYTES" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the diagnosis service: POST /diagnose with a JSON request \
          (or a batch scenario line) against the built-in circuits or an \
          inline netlist, POST /session/* for persistent interactive \
          troubleshooting sessions (create/measure/retract/refine/\
          diagnoses/next, bounded by --session-cap with an idle \
          --session-ttl, optionally journaled to --journal so they \
          survive restarts and kill -9), GET /metrics for Prometheus \
          exposition, /healthz, /readyz and /version.  Overload is shed \
          with 429 and Retry-After; SIGTERM drains gracefully.")
    Term.(
      const run $ obs_term $ wide_events_term $ flight_dump_arg $ host_arg
      $ port_arg $ workers_arg $ inflight_arg $ quota_rate_arg
      $ quota_burst_arg $ max_body_arg $ default_wall_arg $ max_wall_arg
      $ session_cap_arg $ session_ttl_arg $ journal_arg $ fsync_arg
      $ fsync_interval_arg $ journal_segment_bytes_arg)

let troubleshoot_cmd =
  let module Script = Flames_session.Script in
  let run () () file no_echo max_candidates no_compiled =
    protect @@ fun () ->
    let text =
      match file with
      | None | Some "-" -> In_channel.input_all In_channel.stdin
      | Some path ->
        if Sys.file_exists path then
          In_channel.with_open_bin path In_channel.input_all
        else die_input "troubleshoot: no such script %S" path
    in
    match Script.parse text with
    | Error e -> die_input "troubleshoot: %s" e
    | Ok commands -> (
      let session_of netlist =
        let use_compiled = not no_compiled in
        match max_candidates with
        | None -> Flames_session.Session.create ~use_compiled netlist
        | Some n ->
          Flames_session.Session.create ~use_compiled
            ~budget_spec:(Flames_core.Budget.spec ~max_candidates:n ())
            netlist
      in
      match Script.run ~echo:(not no_echo) ~session_of commands with
      | Ok _ -> ()
      | Error e -> die_run "troubleshoot: %s" e)
  in
  let file_arg =
    let doc =
      "Troubleshooting script to replay ('-' or absent reads stdin).  One \
       command per line: circuit, fault, imprecision, probe, measure, \
       retract, refine, diagnoses, next, status, quit; '#' comments."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SCRIPT" ~doc)
  in
  let no_echo_arg =
    let doc = "Do not echo each command as '> cmd' before its output." in
    Arg.(value & flag & info [ "no-echo" ] ~doc)
  in
  let max_candidates_arg =
    let doc = "Per-diagnosis candidate budget (degrades, never fails)." in
    Arg.(
      value
      & opt (some int) None
      & info [ "max-candidates" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "troubleshoot"
       ~doc:
         "Interactive troubleshooting session (paper section 8): keep one \
          circuit's compiled model and ATMS state alive while measurements \
          arrive, retract or refine them, and ask for the ranked diagnosis \
          and the fuzzy-entropy best next test after any step.  Reads a \
          script from a file or stdin, so it pipes: echo 'circuit \
          amplifier' | flames troubleshoot.")
    Term.(
      const run $ obs_term $ wide_events_term $ file_arg $ no_echo_arg
      $ max_candidates_arg $ no_compiled_arg)

let tail_cmd =
  let module Json = Flames_serve.Json in
  (* One pretty line per wide event: timestamp, event name, the
     correlation keys, then the remaining fields as k=v. *)
  let render_num f =
    if Float.is_integer f && Float.abs f < 1e15 then
      string_of_int (int_of_float f)
    else Printf.sprintf "%g" f
  in
  let render_value = function
    | Json.Null -> "null"
    | Json.Bool b -> string_of_bool b
    | Json.Num f -> render_num f
    | Json.Str s -> s
    | (Json.Arr _ | Json.Obj _) as v -> Json.to_string v
  in
  let render_event fields =
    let buf = Buffer.create 128 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    (match List.assoc_opt "ts" fields with
    | Some (Json.Num ts) ->
      let frac = ts -. Float.of_int (int_of_float ts) in
      let tm = Unix.gmtime ts in
      add "%02d:%02d:%02d.%03d " tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
        (int_of_float (frac *. 1e3))
    | _ -> ());
    (match List.assoc_opt "event" fields with
    | Some (Json.Str name) -> add "%-16s" name
    | _ -> add "%-16s" "?");
    List.iter
      (fun key ->
        match List.assoc_opt key fields with
        | Some v -> add " %s=%s" key (render_value v)
        | None -> ())
      [ "trace"; "session"; "route"; "status" ];
    List.iter
      (fun (key, v) ->
        match key with
        | "seq" | "ts" | "event" | "trace" | "session" | "route" | "status" ->
          ()
        | _ -> add " %s=%s" key (render_value v))
      fields;
    Buffer.contents buf
  in
  let matches filter key fields =
    match filter with
    | None -> true
    | Some want -> (
      match List.assoc_opt key fields with
      | Some (Json.Str got) -> String.equal got want
      | _ -> false)
  in
  let run file trace session last =
    protect @@ fun () ->
    let text =
      match file with
      | "-" -> In_channel.input_all In_channel.stdin
      | path ->
        if Sys.file_exists path then
          In_channel.with_open_bin path In_channel.input_all
        else die_input "tail: no such event log %S" path
    in
    let selected =
      String.split_on_char '\n' text
      |> List.filteri (fun i line ->
             let line = String.trim line in
             if line = "" then false
             else
               match Json.parse_result line with
               | Ok (Json.Obj fields) ->
                 matches trace "trace" fields
                 && matches session "session" fields
               | Ok _ | Error _ ->
                 Printf.eprintf "tail: line %d: not a wide event, skipped\n"
                   (i + 1);
                 false)
      |> List.filter_map (fun line ->
             match Json.parse_result (String.trim line) with
             | Ok (Json.Obj fields) -> Some fields
             | _ -> None)
    in
    let selected =
      match last with
      | None -> selected
      | Some n ->
        let len = List.length selected in
        if len <= n then selected
        else List.filteri (fun i _ -> i >= len - n) selected
    in
    List.iter (fun fields -> print_endline (render_event fields)) selected
  in
  let file_arg =
    let doc = "Wide-event log to read, as written by --wide-events \
               ('-' reads stdin)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let trace_arg =
    let doc = "Only events carrying this trace id." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"ID" ~doc)
  in
  let session_arg =
    let doc = "Only events carrying this session id." in
    Arg.(value & opt (some string) None & info [ "session" ] ~docv:"ID" ~doc)
  in
  let last_arg =
    let doc = "Print only the last $(docv) matching events." in
    Arg.(value & opt (some int) None & info [ "last" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "tail"
       ~doc:
         "Pretty-print a wide-event log (one JSON object per line, as \
          written by the --wide-events flag of serve, batch and \
          troubleshoot), optionally filtered to one trace or session id: \
          the first stop when turning a slow or failed request's trace id \
          into its per-stage timings and admission decisions.")
    Term.(const run $ file_arg $ trace_arg $ session_arg $ last_arg)

let main =
  let info =
    Cmd.info "flames" ~version:Flames_serve.Version.current
      ~doc:"Fuzzy-logic ATMS and model-based diagnosis of analog circuits."
  in
  Cmd.group info
    [
      bias_cmd; diagnose_cmd; best_test_cmd; ac_cmd; dynamic_diagnose_cmd;
      batch_cmd; show_cmd; list_cmd; serve_cmd; check_cmd; chaos_cmd;
      obs_demo_cmd; troubleshoot_cmd; tail_cmd;
    ]

let () = exit (Cmd.eval main)
