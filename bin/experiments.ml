(* Regenerates every table and figure of the paper (see DESIGN.md's
   experiment index).  With no argument all experiments are printed in
   order; with an argument only the selected one. *)

let ppf = Format.std_formatter

let run_fig2 () = Flames_experiments.Fig2.(print ppf (run ()))
let run_fig4 () = Flames_experiments.Fig4.(print ppf (run ()))
let run_fig5 () = Flames_experiments.Fig5.(print ppf (run ()))
let run_fig6 () =
  Flames_experiments.Fig7.(print_bias ppf (bias_point ()))
let run_fig7 () = Flames_experiments.Fig7.(print ppf (run ()))
let run_best_test () = Flames_experiments.Strategy_demo.(print ppf (run ()))
let run_learning () = Flames_experiments.Learning_demo.(print ppf (run ()))
let run_ablation () = Flames_experiments.Ablation.(print ppf (run ()))
let run_dynamic () = Flames_experiments.Dynamic_demo.(print ppf (run ()))
let run_explosion () = Flames_experiments.Explosion.(print ppf (run ()))
let run_rules () = Flames_experiments.Rules_demo.(print ppf (run ()))

let experiments =
  [
    ("fig2", run_fig2);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("best-test", run_best_test);
    ("learning", run_learning);
    ("ablation", run_ablation);
    ("dynamic", run_dynamic);
    ("explosion", run_explosion);
    ("rules", run_rules);
  ]

let () =
  match Sys.argv with
  | [| _ |] ->
    List.iter
      (fun (name, f) ->
        Format.fprintf ppf "==== %s ====@." name;
        f ();
        Format.fprintf ppf "@.")
      experiments
  | [| _; name |] -> begin
    match List.assoc_opt name experiments with
    | Some f -> f ()
    | None ->
      Flames_obs.Log.err "unknown experiment %S; available: %s" name
        (String.concat ", " (List.map fst experiments));
      exit 1
  end
  | _ ->
    Flames_obs.Log.err "usage: experiments [%s]"
      (String.concat "|" (List.map fst experiments));
    exit 1
