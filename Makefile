# Developer entry points.  `make check` is the one-command gate: it must
# stay green before every commit (tier-1 verify + engine tests + dune-file
# formatting).

.PHONY: all build test fmt check bench bench-engine clean

all: build

build:
	dune build

test:
	dune runtest

# dune-file formatting check; OCaml sources are gated off in dune-project
# until an ocamlformat binary is part of the toolchain.
fmt:
	dune build @fmt

check: fmt build test
	@echo "check: build, tests and formatting are green"

# full harness: paper tables, bechamel timings, BENCH_engine.json
bench: build
	dune exec bench/main.exe

# just the engine throughput series (writes BENCH_engine.json)
bench-engine: build
	dune exec bench/main.exe -- --engine-json-only

clean:
	dune clean
