# Developer entry points.  `make check` is the one-command gate: it must
# stay green before every commit (tier-1 verify + engine tests + dune-file
# formatting).

.PHONY: all build test fmt check check-deep chaos corpus bench bench-engine bench-atms bench-session bench-serve bench-obs bench-compile bench-store serve trace clean

all: build

build:
	dune build

test:
	dune runtest

# dune-file formatting check; OCaml sources are gated off in dune-project
# until an ocamlformat binary is part of the toolchain.
fmt:
	dune build @fmt

check: fmt build test
	@echo "check: build, tests and formatting are green"

# deep verification: differential oracles, random-circuit invariants and
# the golden snapshot corpus (lib/check); ITERS scales every budget
ITERS ?= 1000
check-deep: build
	dune exec bin/flames_cli.exe -- check --iters $(ITERS)

# chaos harness: seeded batches of random diagnoses with injected
# faults (exceptions, worker kills, singular systems, NaN, delays)
# through the full resilience stack; a failing case prints the seed
# that replays it (CHAOS_ITERS and CHAOS_SEED scale/pin the run)
CHAOS_ITERS ?= 25
CHAOS_SEED ?= 0
chaos: build
	dune exec bin/flames_cli.exe -- chaos --iters $(CHAOS_ITERS) --seed $(CHAOS_SEED)

# re-render the golden corpus after an intentional behaviour change
corpus: build
	dune exec bin/flames_cli.exe -- check --iters 1 --no-corpus --write-corpus

# full harness: paper tables, bechamel timings, BENCH_engine.json
bench: build
	dune exec bench/main.exe

# just the engine throughput series (writes BENCH_engine.json)
bench-engine: build
	dune exec bench/main.exe -- --engine-json-only

# naive vs interned-bitset ATMS series (writes BENCH_atms.json);
# add --atms-smoke for the reduced CI variant
bench-atms: build
	dune exec bench/main.exe -- --atms-json-only

# incremental troubleshooting sessions vs per-step cold rebuilds over
# the corpus scenarios (writes BENCH_session.json)
bench-session: build
	dune exec bench/main.exe -- --session-json-only

# observability overhead on the fig-7 diagnosis: wide events + digests
# on vs off, paired runs, median ratio (writes BENCH_obs.json; the CI
# claim is overhead_pct < 3)
bench-obs: build
	dune exec bench/main.exe -- --obs-json-only

# compiled flat schedules vs the propagation interpreter on the fig-7
# sweep and the amplifier-chain scaling series, cold and warm schedule
# cache (writes BENCH_compile.json; the CI claim is fig-7 median warm
# speedup >= 5).  Add --compile-smoke for the reduced CI variant
bench-compile: build
	dune exec bench/main.exe -- --compile-json-only

# journal durability costs: per-step append overhead over an in-memory
# session at each fsync discipline (paired loops, median ratio) and
# recovery replay time vs journal length (writes BENCH_store.json; the
# claim is interval-mode overhead <= 5)
bench-store: build
	dune exec bench/main.exe -- --store-json-only

# run the diagnosis service on the default port (SERVE_ARGS appends
# e.g. --port 9000 --quota-rate 5)
serve: build
	dune exec bin/flames_cli.exe -- serve $(SERVE_ARGS)

# saturation sweep against an in-process server on an ephemeral port:
# seeded clients, exact latency percentiles, writes BENCH_serve.json
SERVE_SEED ?= 42
SERVE_DURATION ?= 5
SERVE_LEVELS ?= 1,2,4,8,16
bench-serve: build
	dune exec bin/flames_load.exe -- --spawn --workers 1 --max-inflight 4 \
	  --seed $(SERVE_SEED) --duration $(SERVE_DURATION) \
	  --levels $(SERVE_LEVELS) --json BENCH_serve.json

# traced fig-7 sweep: writes trace.json (open in ui.perfetto.dev) and
# dumps the metrics registry on stderr
trace: build
	dune exec bin/flames_cli.exe -- obs-demo --trace trace.json --metrics

clean:
	dune clean
