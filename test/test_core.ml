(* Tests for the core engine: values, constraints, model compilation,
   fuzzy-interval propagation with conflict recognition, and the
   diagnosis driver. *)

module I = Flames_fuzzy.Interval
module Env = Flames_atms.Env
module Q = Flames_circuit.Quantity
module C = Flames_circuit.Component
module N = Flames_circuit.Netlist
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Value = Flames_core.Value
module Constr = Flames_core.Constr
module Model = Flames_core.Model
module Propagate = Flames_core.Propagate
module Diagnose = Flames_core.Diagnose
module Report = Flames_core.Report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_close msg tol expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* {1 Value} *)

let test_value_constructors () =
  let m = Value.measured (I.crisp 1.) in
  check_bool "measured observational" true m.Value.observational;
  check_bool "measured env empty" true (Env.is_empty m.Value.env);
  let g = Value.given (I.crisp 1.) (Env.singleton 0) in
  check_bool "given model-side" false g.Value.observational;
  let d =
    Value.derived "c" (I.crisp 1.) Env.empty 0.8 ~observational:true
      ~history:Value.History.empty
  in
  check_bool "derivation recorded in history" true
    (Value.History.mem "c" d.Value.history)

let test_value_strength () =
  let m = Value.measured (I.number 1. ~spread:10.) in
  let g = Value.given (I.crisp 1.) Env.empty in
  check_bool "measured beats given" true (Value.strength m g < 0);
  let small_env = Value.given (I.crisp 1.) (Env.singleton 0) in
  let big_env = Value.given (I.crisp 1.) (Env.of_list [ 0; 1 ]) in
  check_bool "smaller env preferred" true (Value.strength small_env big_env < 0)

let test_value_subsumes () =
  let tight = Value.given (I.number 1. ~spread:0.1) (Env.singleton 0) in
  let loose = Value.given (I.number 1. ~spread:1.) (Env.of_list [ 0; 1 ]) in
  check_bool "tight subset subsumes" true (Value.subsumes tight loose);
  check_bool "loose does not subsume" false (Value.subsumes loose tight);
  let other_side = Value.measured (I.number 1. ~spread:0.1) in
  check_bool "different sides never subsume" false
    (Value.subsumes other_side loose)

(* {1 Constr} *)

let lookup_of assoc q =
  List.find_map
    (fun (q', v) -> if Q.equal q q' then Some v else None)
    assoc

let test_constr_linear_solves_each_var () =
  (* x − y − z = 0, i.e. x = y + z *)
  let x = Q.voltage "x" and y = Q.voltage "y" and z = Q.voltage "z" in
  let c =
    Constr.make "kvl" (Constr.Linear ([ (1., x); (-1., y); (-1., z) ], 0.))
  in
  let env = [ (y, I.crisp 2.); (z, I.crisp 3.) ] in
  (match Constr.solve_for c x (lookup_of env) with
  | Some v -> check_float "x = 5" 5. (I.centroid v)
  | None -> Alcotest.fail "x underivable");
  let env = [ (x, I.crisp 5.); (z, I.crisp 3.) ] in
  (match Constr.solve_for c y (lookup_of env) with
  | Some v -> check_float "y = 2" 2. (I.centroid v)
  | None -> Alcotest.fail "y underivable");
  check_bool "missing input" true
    (Constr.solve_for c x (lookup_of [ (y, I.crisp 2.) ]) = None);
  check_bool "foreign target" true
    (Constr.solve_for c (Q.voltage "w") (lookup_of env) = None)

let test_constr_linear_coefficients () =
  (* 2x + 3y = 12 *)
  let x = Q.voltage "x" and y = Q.voltage "y" in
  let c = Constr.make "lin" (Constr.Linear ([ (2., x); (3., y) ], 12.)) in
  match Constr.solve_for c x (lookup_of [ (y, I.crisp 2.) ]) with
  | Some v -> check_float "x = 3" 3. (I.centroid v)
  | None -> Alcotest.fail "underivable"

let test_constr_product_all_directions () =
  (* u = i ⊗ r *)
  let u = Q.drop "r" and i = Q.current "r" and r = Q.parameter "r" "R" in
  let c = Constr.make "ohm" (Constr.Product (u, i, r)) in
  (match Constr.solve_for c u (lookup_of [ (i, I.crisp 2.); (r, I.crisp 3.) ]) with
  | Some v -> check_float "u = 6" 6. (I.centroid v)
  | None -> Alcotest.fail "u underivable");
  (match Constr.solve_for c i (lookup_of [ (u, I.crisp 6.); (r, I.crisp 3.) ]) with
  | Some v -> check_float "i = 2" 2. (I.centroid v)
  | None -> Alcotest.fail "i underivable");
  match Constr.solve_for c r (lookup_of [ (u, I.crisp 6.); (i, I.crisp 2.) ]) with
  | Some v -> check_float "r = 3" 3. (I.centroid v)
  | None -> Alcotest.fail "r underivable"

let test_constr_product_division_by_zero () =
  let u = Q.drop "r" and i = Q.current "r" and r = Q.parameter "r" "R" in
  let c = Constr.make "ohm" (Constr.Product (u, i, r)) in
  let zero_spanning = I.make ~m1:(-1.) ~m2:1. ~alpha:0. ~beta:0. in
  check_bool "division through zero yields None" true
    (Constr.solve_for c i (lookup_of [ (u, I.crisp 6.); (r, zero_spanning) ])
    = None)

let test_constr_generative () =
  let q = Q.current "d" in
  let bound = I.make ~m1:0. ~m2:1. ~alpha:0. ~beta:0.1 in
  let c = Constr.make "bound" (Constr.Bound (q, bound)) in
  check_bool "generative" true (Constr.is_generative c);
  check_bool "no sources" true (Constr.sources c = []);
  match Constr.solve_for c q (lookup_of []) with
  | Some v -> check_bool "bound returned" true (I.equal v bound)
  | None -> Alcotest.fail "bound underivable"

let test_constr_validation () =
  let x = Q.voltage "x" in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Constr.make "bad" (Constr.Linear ([ (1., x) ], 0.)));
  expect_invalid (fun () ->
      Constr.make "bad" (Constr.Linear ([ (0., x); (1., Q.voltage "y") ], 0.)));
  expect_invalid (fun () ->
      Constr.make "bad" (Constr.Linear ([ (1., x); (2., x) ], 0.)));
  expect_invalid (fun () -> Constr.make "bad" (Constr.Product (x, x, Q.voltage "y")))

(* {1 Model} *)

let test_model_divider () =
  let model = Model.compile (L.voltage_divider ()) in
  check_int "three component assumptions" 3
    (List.length (Model.component_assumptions model));
  (* resistor quantities present *)
  check_bool "drop quantity" true
    (List.exists (Q.equal (Q.drop "r1")) model.Model.quantities);
  check_bool "parameter quantity" true
    (List.exists (Q.equal (Q.parameter "r1" "R")) model.Model.quantities);
  check_bool "kcl generated" true
    (List.exists
       (fun (c : Constr.t) -> c.Constr.name = "kcl(mid)")
       model.Model.constraints)

let test_model_trusted () =
  let config = { Model.default_config with trusted = [ "vin" ] } in
  let model = Model.compile ~config (L.voltage_divider ()) in
  check_int "vin has no assumption" 2
    (List.length (Model.component_assumptions model));
  match Model.assumption_id model "vin" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "trusted component must have no assumption"

let test_model_no_kcl () =
  let config = { Model.default_config with kcl = false } in
  let model = Model.compile ~config (L.voltage_divider ()) in
  check_bool "no kcl constraints" true
    (not
       (List.exists
          (fun (c : Constr.t) ->
            String.length c.Constr.name >= 3
            && String.sub c.Constr.name 0 3 = "kcl")
          model.Model.constraints))

let test_model_node_assumptions () =
  let config = { Model.default_config with node_assumptions = true } in
  let model = Model.compile ~config (L.voltage_divider ()) in
  (* nodes in and mid get assumptions on top of the 3 components *)
  check_int "assumption count" 5 (Array.length model.Model.assumption_names)

let test_model_port_skips_kcl () =
  let model = Model.compile (L.diode_resistor ()) in
  check_bool "no kcl at port" true
    (not
       (List.exists
          (fun (c : Constr.t) -> c.Constr.name = "kcl(in)")
          model.Model.constraints))

let test_model_bjt_constraints () =
  let model = Model.compile (L.three_stage_amplifier ()) in
  List.iter
    (fun name ->
      check_bool name true
        (List.exists
           (fun (c : Constr.t) -> c.Constr.name = name)
           model.Model.constraints))
    [ "vbe(t1)"; "beta(t1)"; "ie(t1)"; "ie-gain(t1)"; "nominal(t1.beta+1)" ]

(* {1 Propagate} *)

let test_propagate_divider_forward () =
  (* observing the input lets the engine derive the series current from
     each resistor's drop — no simultaneous solving needed once mid is
     also measured *)
  let model = Model.compile (L.voltage_divider ()) in
  let e = Propagate.create model in
  Propagate.observe e (Q.voltage "in") (I.crisp 10.);
  Propagate.observe e (Q.voltage "mid") (I.crisp 5.);
  Propagate.run e;
  (match Propagate.best_value e ~observational:true (Q.current "r1") with
  | Some v -> check_close "I(r1) = 0.5 mA" 1e-5 5e-4 (I.centroid v.Value.interval)
  | None -> Alcotest.fail "current underivable");
  check_bool "healthy: no conflict" true (Propagate.conflicts e = [])

let test_propagate_detects_conflict () =
  let model = Model.compile (L.voltage_divider ()) in
  let e = Propagate.create model in
  (* equal resistors but mid far from in/2: someone is lying *)
  Propagate.observe e (Q.voltage "in") (I.crisp 10.);
  Propagate.observe e (Q.voltage "mid") (I.crisp 9.);
  Propagate.run e;
  check_bool "conflict recorded" true (Propagate.conflicts e <> [])

let test_propagate_incremental () =
  let model = Model.compile (L.voltage_divider ()) in
  let e = Propagate.create model in
  Propagate.observe e (Q.voltage "in") (I.crisp 10.);
  Propagate.run e;
  let before = List.length (Propagate.conflicts e) in
  Propagate.observe e (Q.voltage "mid") (I.crisp 9.);
  Propagate.run e;
  check_bool "incremental observation creates conflicts" true
    (List.length (Propagate.conflicts e) > before)

let test_propagate_parameter_estimate () =
  (* measured drop and derived current give an observational estimate of
     the resistance, used by fault-mode refinement *)
  let model = Model.compile (L.voltage_divider ()) in
  let e = Propagate.create model in
  Propagate.observe e (Q.voltage "in") (I.crisp 10.);
  Propagate.observe e (Q.voltage "mid") (I.crisp 5.);
  Propagate.run e;
  match Propagate.best_value e ~observational:true (Q.parameter "r1" "R") with
  | Some v -> check_close "R estimate" 200. 10e3 (I.centroid v.Value.interval)
  | None -> Alcotest.fail "no parameter estimate"

let test_propagate_cell_cap () =
  let limits = { Propagate.default_limits with max_values_per_cell = 2 } in
  let model = Model.compile (L.voltage_divider ()) in
  let e = Propagate.create ~limits model in
  Propagate.observe e (Q.voltage "in") (I.crisp 10.);
  Propagate.observe e (Q.voltage "mid") (I.crisp 5.);
  Propagate.run e;
  List.iter
    (fun q ->
      check_bool "cap respected" true (List.length (Propagate.values e q) <= 2))
    model.Model.quantities

let test_propagate_conflict_floor () =
  (* a barely-deviant measurement is absorbed by the conflict floor *)
  let limits = { Propagate.default_limits with min_conflict_degree = 0.9 } in
  let model = Model.compile (L.voltage_divider ()) in
  let e = Propagate.create ~limits model in
  Propagate.observe e (Q.voltage "in") (I.number 10. ~spread:0.1);
  Propagate.observe e (Q.voltage "mid") (I.number 5.2 ~spread:0.1);
  Propagate.run e;
  check_bool "weak conflicts filtered" true
    (List.for_all
       (fun (c : Flames_atms.Candidates.conflict) ->
         c.Flames_atms.Candidates.degree >= 0.9)
       (Propagate.conflicts e))

let test_propagate_guard_suspends_model () =
  (* with the base measured at ground, the transistor's linear model must
     not fire (the paper's qualitative conduction rule) *)
  let model =
    Model.compile
      ~config:{ Model.default_config with trusted = [ "vcc" ] }
      (L.three_stage_amplifier ())
  in
  let e = Propagate.create model in
  Propagate.observe e (Q.voltage "n1") (I.crisp 0.);
  Propagate.run e;
  check_bool "no e1 value through suspended vbe(t1)" true
    (Propagate.best_value e ~observational:true (Q.voltage "e1") = None)

(* {1 Diagnose} *)

let config = { Model.default_config with trusted = [ "vcc" ] }
let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 }

let diagnose_amp fault probes =
  let nominal = L.three_stage_amplifier ~tolerance:0.005 () in
  let faulty = match fault with None -> nominal | Some f -> f nominal in
  let sol = Flames_sim.Mna.solve faulty in
  let obs =
    Flames_sim.Measure.probe_all ~instrument sol (List.map Q.voltage probes)
  in
  Diagnose.run ~config nominal obs

(* The compiled flat schedule is an execution strategy, not a semantic
   fork: the same diagnosis through [~use_compiled:false] (interpreter),
   the default compiled path, and an explicitly pre-compiled reused
   schedule must agree on every reported field.  (The hex-exact
   fingerprint version of this check runs over >= 300 random scenarios
   in the check suite; this is the directed fig-7-shaped case.) *)
let test_diagnose_compiled_matches_interpreter () =
  let nominal = L.three_stage_amplifier ~tolerance:0.005 () in
  let faulty = F.inject nominal (F.short "r2" ~parameter:"R") in
  let sol = Flames_sim.Mna.solve faulty in
  let obs =
    Flames_sim.Measure.probe_all ~instrument sol
      (List.map Q.voltage [ "vs"; "n2"; "v1" ])
  in
  let interp = Diagnose.run ~config ~use_compiled:false nominal obs in
  let compiled = Diagnose.run ~config nominal obs in
  let schedule =
    Flames_core.Schedule.compile ~config nominal
  in
  let reused = Diagnose.run ~config ~schedule nominal obs in
  let same label (a : Diagnose.result) (b : Diagnose.result) =
    check_bool (label ^ ": same conflicts") true
      (a.Diagnose.conflicts = b.Diagnose.conflicts);
    check_bool (label ^ ": same symptoms") true
      (a.Diagnose.symptoms = b.Diagnose.symptoms);
    check_bool (label ^ ": same suspects") true
      (a.Diagnose.suspects = b.Diagnose.suspects);
    check_bool (label ^ ": same diagnoses") true
      (a.Diagnose.diagnoses = b.Diagnose.diagnoses);
    check_bool (label ^ ": same single faults") true
      (a.Diagnose.single_faults = b.Diagnose.single_faults)
  in
  same "compiled" interp compiled;
  same "reused schedule" interp reused

let test_diagnose_healthy () =
  let r = diagnose_amp None [ "vs"; "n2"; "v1" ] in
  check_bool "healthy" true (Diagnose.healthy r);
  check_bool "no suspects" true (r.Diagnose.suspects = []);
  check_bool "summary says healthy" true
    (String.length (Report.summary r) >= 7
    && String.sub (Report.summary r) 0 7 = "healthy")

let test_diagnose_hard_fault_detected () =
  let r =
    diagnose_amp
      (Some (fun n -> F.inject n (F.short "r2" ~parameter:"R")))
      [ "vs"; "n2"; "v1" ]
  in
  check_bool "not healthy" true (not (Diagnose.healthy r));
  (* stage-1 components are the prime suspects *)
  let top = Diagnose.suspects_above r 0.9 in
  List.iter
    (fun c -> check_bool (c ^ " suspected") true (List.mem c top))
    [ "r1"; "r2"; "r3"; "t1" ];
  (* single-fault explanations (fit-based) stay within stage 1: no
     downstream component value reproduces the symptoms *)
  let explainers =
    List.filter_map
      (fun (s : Diagnose.suspect) ->
        if s.Diagnose.explains then Some s.Diagnose.component else None)
      r.Diagnose.suspects
  in
  check_bool "r2 explains the symptoms" true (List.mem "r2" explainers);
  List.iter
    (fun c ->
      check_bool (c ^ " is a stage-1 explainer") true
        (List.mem c [ "r1"; "r2"; "r3"; "r4"; "t1" ]))
    explainers

let test_diagnose_fault_mode_refinement () =
  let r =
    diagnose_amp
      (Some (fun n -> F.inject n (F.short "r2" ~parameter:"R")))
      [ "vs"; "n2"; "v1" ]
  in
  let r2 =
    List.find
      (fun (s : Diagnose.suspect) -> s.Diagnose.component = "r2")
      r.Diagnose.suspects
  in
  let has_short =
    List.exists
      (fun (e : Diagnose.mode_estimate) ->
        match e.Diagnose.modes with
        | (F.Short, d) :: _ -> d > 0.9
        | _ -> false)
      r2.Diagnose.estimates
  in
  check_bool "r2 classified short" true has_short

let test_diagnose_soft_fault_graded () =
  let r =
    diagnose_amp
      (Some (fun n -> F.inject n (F.shifted "r2" ~parameter:"R" 12.18e3)))
      [ "vs"; "n2"; "v1" ]
  in
  check_bool "soft fault detected" true (not (Diagnose.healthy r));
  (* graded, not hard: all conflicts strictly below 1 *)
  check_bool "conflicts graded" true
    (List.for_all
       (fun (c : Flames_atms.Candidates.conflict) ->
         c.Flames_atms.Candidates.degree < 1.)
       r.Diagnose.conflicts);
  (* the Dc columns: measured below prediction on all probes *)
  List.iter
    (fun (s : Diagnose.symptom) ->
      match s.Diagnose.verdict with
      | Some v ->
        check_bool "partial consistency" true
          (v.Flames_fuzzy.Consistency.dc > 0.5
          && v.Flames_fuzzy.Consistency.dc < 1.);
        check_bool "low side" true
          (v.Flames_fuzzy.Consistency.direction = Flames_fuzzy.Consistency.Low)
      | None -> Alcotest.fail "symptom without verdict")
    r.Diagnose.symptoms

let test_diagnose_symptoms_have_predictions () =
  let r = diagnose_amp None [ "vs" ] in
  match r.Diagnose.symptoms with
  | [ s ] ->
    check_bool "prediction present" true (s.Diagnose.predicted <> None);
    check_bool "dc = 1 on healthy" true
      (match s.Diagnose.verdict with
      | Some v -> v.Flames_fuzzy.Consistency.dc > 0.99
      | None -> false)
  | _ -> Alcotest.fail "expected one symptom"

let test_diagnose_trusted_never_suspect () =
  let r =
    diagnose_amp
      (Some (fun n -> F.inject n (F.short "r2" ~parameter:"R")))
      [ "vs"; "n2"; "v1" ]
  in
  check_bool "vcc never suspected" true
    (not
       (List.exists
          (fun (s : Diagnose.suspect) -> s.Diagnose.component = "vcc")
          r.Diagnose.suspects))

let test_diagnose_fig5 () =
  (* the full paper example through the public driver *)
  let r =
    Diagnose.run (L.diode_resistor ())
      [
        (Q.drop "d1", I.crisp 0.2);
        (Q.drop "r1", I.crisp 1.05);
        (Q.drop "r2", I.crisp 2.0);
      ]
  in
  let degree_of members =
    List.fold_left
      (fun acc (c : Flames_atms.Candidates.conflict) ->
        let names =
          List.map
            (Propagate.names r.Diagnose.engine)
            (Env.to_list c.Flames_atms.Candidates.env)
        in
        if List.sort String.compare names = List.sort String.compare members
        then Float.max acc c.Flames_atms.Candidates.degree
        else acc)
      0. r.Diagnose.conflicts
  in
  check_close "paper nogood {r1,d1} at 0.5" 0.05 0.5 (degree_of [ "r1"; "d1" ]);
  check_float "paper nogood {r2,d1} at 1" 1. (degree_of [ "r2"; "d1" ])

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i =
    i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1))
  in
  ln = 0 || go 0

let test_report_renders () =
  let r =
    diagnose_amp
      (Some (fun n -> F.inject n (F.short "r2" ~parameter:"R")))
      [ "vs"; "n2"; "v1" ]
  in
  let text = Format.asprintf "%a" Report.pp_result r in
  List.iter
    (fun needle -> check_bool needle true (contains text needle))
    [ "symptoms"; "conflicts"; "suspects"; "minimal diagnoses" ]

let () =
  Alcotest.run "core"
    [
      ( "value",
        [
          Alcotest.test_case "constructors" `Quick test_value_constructors;
          Alcotest.test_case "strength" `Quick test_value_strength;
          Alcotest.test_case "subsumes" `Quick test_value_subsumes;
        ] );
      ( "constr",
        [
          Alcotest.test_case "linear directions" `Quick
            test_constr_linear_solves_each_var;
          Alcotest.test_case "linear coefficients" `Quick
            test_constr_linear_coefficients;
          Alcotest.test_case "product directions" `Quick
            test_constr_product_all_directions;
          Alcotest.test_case "division by zero" `Quick
            test_constr_product_division_by_zero;
          Alcotest.test_case "generative" `Quick test_constr_generative;
          Alcotest.test_case "validation" `Quick test_constr_validation;
        ] );
      ( "model",
        [
          Alcotest.test_case "divider" `Quick test_model_divider;
          Alcotest.test_case "trusted" `Quick test_model_trusted;
          Alcotest.test_case "no kcl" `Quick test_model_no_kcl;
          Alcotest.test_case "node assumptions" `Quick
            test_model_node_assumptions;
          Alcotest.test_case "port skips kcl" `Quick test_model_port_skips_kcl;
          Alcotest.test_case "bjt constraints" `Quick
            test_model_bjt_constraints;
        ] );
      ( "propagate",
        [
          Alcotest.test_case "divider forward" `Quick
            test_propagate_divider_forward;
          Alcotest.test_case "detects conflict" `Quick
            test_propagate_detects_conflict;
          Alcotest.test_case "incremental" `Quick test_propagate_incremental;
          Alcotest.test_case "parameter estimate" `Quick
            test_propagate_parameter_estimate;
          Alcotest.test_case "cell cap" `Quick test_propagate_cell_cap;
          Alcotest.test_case "conflict floor" `Quick
            test_propagate_conflict_floor;
          Alcotest.test_case "guard suspends model" `Quick
            test_propagate_guard_suspends_model;
        ] );
      ( "diagnose",
        [
          Alcotest.test_case "healthy" `Quick test_diagnose_healthy;
          Alcotest.test_case "compiled matches interpreter" `Quick
            test_diagnose_compiled_matches_interpreter;
          Alcotest.test_case "hard fault" `Quick
            test_diagnose_hard_fault_detected;
          Alcotest.test_case "fault-mode refinement" `Quick
            test_diagnose_fault_mode_refinement;
          Alcotest.test_case "soft fault graded" `Quick
            test_diagnose_soft_fault_graded;
          Alcotest.test_case "symptom predictions" `Quick
            test_diagnose_symptoms_have_predictions;
          Alcotest.test_case "trusted never suspect" `Quick
            test_diagnose_trusted_never_suspect;
          Alcotest.test_case "fig5 degrees" `Quick test_diagnose_fig5;
          Alcotest.test_case "report renders" `Quick test_report_renders;
        ] );
    ]
