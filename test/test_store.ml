(* The session write-ahead journal (lib/store): CRC framing, the record
   codec, append/rotate/recover, seeded crash injection, and a real
   kill -9 end-to-end through the served CLI binary. *)

module Frame = Flames_store.Frame
module Record = Flames_store.Record
module Journal = Flames_store.Journal
module Session = Flames_session.Session
module Script = Flames_session.Script
module I = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module Library = Flames_circuit.Library
module Diagnose = Flames_core.Diagnose
module Chaos = Flames_check.Chaos
module Oracle = Flames_check.Oracle
module Http = Flames_serve.Http
module Json = Flames_serve.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun name -> rm_rf (Filename.concat path name))
      (try Sys.readdir path with Sys_error _ -> [||]);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "flames-store-test-%d-%d" (Unix.getpid ()) !counter)
    in
    rm_rf dir;
    dir

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spit path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let segment1 dir = Filename.concat dir "segment-00000001.wal"

(* {1 Framing} *)

let walk_payloads content =
  let rec go pos acc =
    match Frame.read content ~pos with
    | Frame.Frame { payload; next } -> go next (payload :: acc)
    | Frame.End -> List.rev acc
    | Frame.Torn -> Alcotest.fail "unexpected torn frame"
    | Frame.Corrupt -> Alcotest.fail "unexpected corrupt frame"
  in
  go (String.length Frame.header) []

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; "measure s1 1 v:mid"; String.make 9001 'z' ] in
  let buf = Buffer.create 256 in
  Buffer.add_string buf Frame.header;
  List.iter (Frame.add_frame buf) payloads;
  let content = Buffer.contents buf in
  check_bool "payloads roundtrip" true (walk_payloads content = payloads);
  let via_frame =
    String.concat "" (Frame.header :: List.map Frame.frame payloads)
  in
  check_string "frame and add_frame agree" content via_frame;
  (* the standard CRC-32 check value pins the polynomial and reflection *)
  check_bool "crc32 check value" true (Frame.crc32 "123456789" = 0xCBF43926);
  check_int "crc32 of empty" 0 (Frame.crc32 "")

let test_frame_damage () =
  let content = Frame.header ^ Frame.frame "hello world" in
  let hlen = String.length Frame.header in
  (* every possible truncation inside the frame is Torn, never a parse *)
  for cut = hlen + 1 to String.length content - 1 do
    match Frame.read (String.sub content 0 cut) ~pos:hlen with
    | Frame.Torn -> ()
    | Frame.Frame _ | Frame.End | Frame.Corrupt ->
      Alcotest.failf "cut at %d not reported torn" cut
  done;
  (* a flipped payload or checksum byte is Corrupt *)
  for off = hlen + 4 to String.length content - 1 do
    let b = Bytes.of_string content in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x10));
    match Frame.read (Bytes.to_string b) ~pos:hlen with
    | Frame.Corrupt -> ()
    | Frame.Frame _ | Frame.End | Frame.Torn ->
      Alcotest.failf "flip at %d not reported corrupt" off
  done;
  (* an implausible length field is Corrupt, not a gigantic torn read *)
  let b = Bytes.of_string content in
  Bytes.set b (hlen + 3) '\xff';
  (match Frame.read (Bytes.to_string b) ~pos:hlen with
  | Frame.Corrupt -> ()
  | _ -> Alcotest.fail "oversized length not reported corrupt");
  check_bool "clean end" true (Frame.read content ~pos:(String.length content) = Frame.End)

(* {1 Record codec} *)

let roundtrip r =
  match Record.decode (Record.encode r) with
  | Ok r' -> r'
  | Error m -> Alcotest.failf "decode failed: %s (%s)" m (Record.encode r)

let check_roundtrip name r = check_bool name true (roundtrip r = r)

let gnarly =
  I.make ~m1:(-0.30000000000000004) ~m2:0.1 ~alpha:1.0e-30 ~beta:3.75

let test_record_roundtrip () =
  check_roundtrip "create builtin"
    (Record.Create { sid = "s1"; source = Record.Builtin "divider"; trusted = [] });
  check_roundtrip "create inline with structure"
    (Record.Create
       {
         sid = "s 2%:";
         source = Record.Inline ".circuit t\n.ground gnd\nR r1 a b 10k\n";
         trusted = [ "r1"; "odd name%" ];
       });
  check_roundtrip "create empty inline"
    (Record.Create { sid = ""; source = Record.Inline ""; trusted = [ "" ] });
  check_roundtrip "measure hex-exact"
    (Record.Measure
       { sid = "s1"; mid = 3; quantity = Q.voltage "mid node"; interval = gnarly });
  check_roundtrip "measure terminal current"
    (Record.Measure
       {
         sid = "s1";
         mid = 12;
         quantity = Q.terminal_current "q1" "base";
         interval = I.crisp 0.7;
       });
  check_roundtrip "retract" (Record.Retract { sid = "s1"; mid = 7 });
  check_roundtrip "refine"
    (Record.Refine { sid = "s1"; mid = 7; interval = I.number 2.5 ~spread:0.05 });
  check_roundtrip "close" (Record.Close { sid = "s1" });
  check_roundtrip "snapshot"
    (Record.Snapshot
       {
         sid = "s9";
         source = Record.Builtin "divider";
         trusted = [ "vs" ];
         next_id = 14;
         steps = 21;
         measurements =
           [
             (2, Q.voltage "mid", gnarly);
             (13, Q.parameter "r2" "R", I.number 10000. ~spread:500.);
           ];
       });
  check_roundtrip "empty snapshot"
    (Record.Snapshot
       {
         sid = "s9";
         source = Record.Inline "";
         trusted = [];
         next_id = 1;
         steps = 0;
         measurements = [];
       })

let test_record_bit_exactness () =
  (* the decoded floats are the written floats, bit for bit *)
  let v = I.make ~m1:0.1 ~m2:(0.1 +. Float.epsilon) ~alpha:1e-308 ~beta:0. in
  match roundtrip (Record.Refine { sid = "s"; mid = 1; interval = v }) with
  | Record.Refine { interval; _ } ->
    check_bool "m1 bits" true
      (Int64.equal (Int64.bits_of_float interval.I.m1) (Int64.bits_of_float v.I.m1));
    check_bool "m2 bits" true
      (Int64.equal (Int64.bits_of_float interval.I.m2) (Int64.bits_of_float v.I.m2));
    check_bool "alpha bits" true
      (Int64.equal
         (Int64.bits_of_float interval.I.alpha)
         (Int64.bits_of_float v.I.alpha))
  | _ -> Alcotest.fail "refine did not round-trip to refine"

let test_record_decode_errors () =
  let bad s =
    match Record.decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "decoded %S" s
  in
  bad "";
  bad "frobnicate s1";
  bad "measure s1";
  bad "measure s1 notanint v:mid 0x1p0 0x1p0 0x0p0 0x0p0";
  bad "measure s1 1 w:mid 0x1p0 0x1p0 0x0p0 0x0p0";
  bad "measure s1 1 v:mid 0x1p0 0x1p0 0x0p0 nan";
  bad "measure s1 1 v:mid 0x2p0 0x1p0 0x0p0 0x0p0" (* m1 > m2 *);
  bad "retract s1 1 extra";
  bad "create s1 b:divider 2 only_one";
  bad "create s1 b:divider -1";
  bad "create s1 q:divider 0";
  bad "create s1 b:div%zzider 0" (* malformed escape *);
  bad "snapshot s1 b:divider 0 1 0 9999999"

(* {1 Journal append / recover} *)

let meas_triples session =
  List.map
    (fun (m : Session.measurement) ->
      (m.Session.id, m.Session.quantity, m.Session.interval))
    (Session.measurements session)

let mid_v = I.number 0.02 ~spread:0.05
let in_v = I.number 10.0 ~spread:0.1

let write_basic_journal dir =
  let j = Journal.open_ ~fsync:Journal.Always dir in
  Journal.append j
    (Record.Create { sid = "s1"; source = Record.Builtin "divider"; trusted = [] });
  Journal.append j
    (Record.Measure
       { sid = "s1"; mid = 1; quantity = Q.voltage "mid"; interval = mid_v });
  Journal.append j
    (Record.Measure
       { sid = "s1"; mid = 2; quantity = Q.voltage "in"; interval = in_v });
  j

let test_journal_roundtrip () =
  with_dir @@ fun dir ->
  let j = write_basic_journal dir in
  Journal.append j (Record.Retract { sid = "s1"; mid = 1 });
  Journal.append j
    (Record.Refine { sid = "s1"; mid = 2; interval = I.number 9.9 ~spread:0.1 });
  Journal.close j;
  (match Journal.append j (Record.Close { sid = "s1" }) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "append after close must raise");
  let r = Journal.recover dir in
  check_int "records" 5 r.Journal.records;
  check_int "segments" 1 r.Journal.segments;
  check_bool "no torn tail" false r.Journal.torn_tail;
  check_int "no corruption" 0 r.Journal.corrupt_frames;
  check_int "nothing dropped" 0 (r.Journal.dropped_records + r.Journal.dropped_sessions);
  match r.Journal.entries with
  | [ e ] ->
    check_string "sid" "s1" e.Journal.sid;
    check_bool "source" true (e.Journal.source = Record.Builtin "divider");
    (match meas_triples e.Journal.session with
    | [ (2, q, v) ] ->
      check_bool "quantity" true (Q.equal q (Q.voltage "in"));
      check_bool "refined interval" true (v = I.number 9.9 ~spread:0.1)
    | ms -> Alcotest.failf "expected one surviving measurement, got %d" (List.length ms));
    check_int "next id continues past the retracted one" 3
      (Session.next_id e.Journal.session)
  | es -> Alcotest.failf "expected one session, got %d" (List.length es)

let test_journal_close_record () =
  with_dir @@ fun dir ->
  let j = write_basic_journal dir in
  Journal.append j (Record.Close { sid = "s1" });
  Journal.close j;
  let r = Journal.recover dir in
  check_int "all records applied" 4 r.Journal.records;
  check_int "closed session not restored" 0 (List.length r.Journal.entries)

let test_journal_torn_tail () =
  with_dir @@ fun dir ->
  Journal.close (write_basic_journal dir);
  (* a crash mid-write: half a frame appended to the newest segment *)
  let tail =
    Frame.frame (Record.encode (Record.Retract { sid = "s1"; mid = 2 }))
  in
  let partial = String.sub tail 0 (String.length tail - 3) in
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (segment1 dir)
  in
  output_string oc partial;
  close_out oc;
  let r = Journal.recover dir in
  check_bool "torn tail seen" true r.Journal.torn_tail;
  check_int "everything before the tear recovered" 3 r.Journal.records;
  check_int "skipped the partial frame" (String.length partial)
    r.Journal.skipped_bytes;
  check_int "no corrupt frames" 0 r.Journal.corrupt_frames;
  match r.Journal.entries with
  | [ e ] ->
    check_int "both measurements live" 2
      (List.length (Session.measurements e.Journal.session))
  | es -> Alcotest.failf "expected one session, got %d" (List.length es)

let test_journal_corrupt_frame () =
  with_dir @@ fun dir ->
  Journal.close (write_basic_journal dir);
  let content = slurp (segment1 dir) in
  (* flip one byte in the second record's frame: the Create before it
     must survive, the damage and everything after is skipped *)
  let create_len =
    String.length
      (Frame.frame
         (Record.encode
            (Record.Create
               { sid = "s1"; source = Record.Builtin "divider"; trusted = [] })))
  in
  let off = String.length Frame.header + create_len + 6 in
  let b = Bytes.of_string content in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x20));
  spit (segment1 dir) (Bytes.to_string b);
  let r = Journal.recover dir in
  check_int "one corrupt frame" 1 r.Journal.corrupt_frames;
  check_bool "not a torn tail" false r.Journal.torn_tail;
  check_int "prefix recovered" 1 r.Journal.records;
  match r.Journal.entries with
  | [ e ] ->
    check_int "session restored empty" 0
      (List.length (Session.measurements e.Journal.session))
  | es -> Alcotest.failf "expected one session, got %d" (List.length es)

let test_journal_rotation () =
  with_dir @@ fun dir ->
  let j = Journal.open_ ~fsync:Journal.Never ~segment_bytes:256 dir in
  Journal.append j
    (Record.Create { sid = "s1"; source = Record.Builtin "divider"; trusted = [] });
  for i = 1 to 8 do
    Journal.append j
      (Record.Measure
         { sid = "s1"; mid = i; quantity = Q.voltage "mid"; interval = mid_v })
  done;
  check_bool "due for rotation" true (Journal.due_for_rotation j);
  let snapshot =
    [
      Record.Snapshot
        {
          sid = "s1";
          source = Record.Builtin "divider";
          trusted = [];
          next_id = 9;
          steps = 8;
          measurements = [ (1, Q.voltage "mid", mid_v); (8, Q.voltage "in", in_v) ];
        };
    ]
  in
  Journal.rotate j ~snapshot;
  Journal.close j;
  let segments =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".wal")
  in
  check_int "old segments deleted" 1 (List.length segments);
  let r = Journal.recover dir in
  check_int "snapshot is the only record" 1 r.Journal.records;
  match r.Journal.entries with
  | [ e ] ->
    let s = e.Journal.session in
    check_int "snapshot measurements" 2 (List.length (Session.measurements s));
    check_int "next_id from snapshot" 9 (Session.next_id s);
    check_int "steps from snapshot" 8 (Session.steps s);
    check_bool "ids preserved verbatim" true
      (List.map (fun (m : Session.measurement) -> m.Session.id)
         (Session.measurements s)
      = [ 1; 8 ])
  | es -> Alcotest.failf "expected one session, got %d" (List.length es)

(* The lost-update race two-phase rotation closes: records acked while
   the snapshot is being captured must survive the commit, whichever
   side of their session's snapshot record they land on — and a crash
   before the commit must recover to the same state as the commit. *)
let test_journal_two_phase_rotation () =
  with_dir @@ fun dir ->
  let j = Journal.open_ ~fsync:Journal.Never dir in
  Journal.append j
    (Record.Create { sid = "s1"; source = Record.Builtin "divider"; trusted = [] });
  Journal.append j
    (Record.Measure
       { sid = "s1"; mid = 1; quantity = Q.voltage "mid"; interval = mid_v });
  let rot = Journal.begin_rotation j in
  (* a step journaled after the swap but before its session's capture:
     the snapshot below includes it (the server's entry lock enforces
     exactly this ordering) *)
  Journal.append j
    (Record.Measure
       { sid = "s1"; mid = 2; quantity = Q.voltage "in"; interval = in_v });
  Journal.append j
    (Record.Snapshot
       {
         sid = "s1";
         source = Record.Builtin "divider";
         trusted = [];
         next_id = 3;
         steps = 2;
         measurements = [ (1, Q.voltage "mid", mid_v); (2, Q.voltage "in", in_v) ];
       });
  (* a step journaled after the capture replays on top of the snapshot *)
  Journal.append j (Record.Retract { sid = "s1"; mid = 1 });
  let state_checks label (r : Journal.recovered) =
    match r.Journal.entries with
    | [ e ] ->
      let s = e.Journal.session in
      check_bool (label ^ ": only measurement 2 survives") true
        (List.map (fun (m : Session.measurement) -> m.Session.id)
           (Session.measurements s)
        = [ 2 ]);
      check_int (label ^ ": next_id past both") 3 (Session.next_id s)
    | es -> Alcotest.failf "%s: expected one session, got %d" label (List.length es)
  in
  (* crash window: swap done, commit not — both segments replay to the
     committed state, nothing dropped *)
  let r = Journal.recover dir in
  check_int "uncommitted: two segments" 2 r.Journal.segments;
  check_int "uncommitted: nothing dropped" 0
    (r.Journal.dropped_records + r.Journal.dropped_sessions);
  state_checks "uncommitted" r;
  Journal.commit_rotation j rot;
  Journal.close j;
  let segments =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".wal")
  in
  check_int "committed: pre-swap segment deleted" 1 (List.length segments);
  let r = Journal.recover dir in
  (* the pre-capture measure lost its Create prefix with the old
     segment; its state rides in the snapshot, so it is counted as a
     dropped record but nothing is lost *)
  check_int "committed: only the orphaned pre-capture record dropped" 1
    r.Journal.dropped_records;
  check_int "committed: no session dropped" 0 r.Journal.dropped_sessions;
  state_checks "committed" r

(* The maintenance tick's half of the [Interval] discipline: a dirty
   tail left by a burst is synced once the interval elapses, and a
   clean journal is left alone. *)
let test_journal_sync_if_due () =
  with_dir @@ fun dir ->
  let module Metrics = Flames_obs.Metrics in
  let fsyncs () = Metrics.counter_value Flames_store.Telemetry.fsyncs_total in
  let j = Journal.open_ ~fsync:(Journal.Interval 0.02) dir in
  let n0 = fsyncs () in
  Journal.sync_if_due j;
  check_int "clean journal: no sync" n0 (fsyncs ());
  Journal.append j
    (Record.Create { sid = "s1"; source = Record.Builtin "divider"; trusted = [] });
  check_int "append within the interval defers the sync" n0 (fsyncs ());
  Thread.delay 0.05;
  Journal.sync_if_due j;
  check_int "idle tail synced once due" (n0 + 1) (fsyncs ());
  Journal.sync_if_due j;
  check_int "already clean: no repeat sync" (n0 + 1) (fsyncs ());
  Journal.close j

let test_journal_missing_dir () =
  let r = Journal.recover (Filename.concat (fresh_dir ()) "nowhere") in
  check_int "no segments" 0 r.Journal.segments;
  check_int "no records" 0 r.Journal.records;
  check_int "no sessions" 0 (List.length r.Journal.entries)

let test_journal_open_never_reuses_segments () =
  with_dir @@ fun dir ->
  Journal.close (write_basic_journal dir);
  (* a second incarnation appends to a fresh segment, never the old one *)
  let j2 = Journal.open_ ~fsync:Journal.Never dir in
  Journal.append j2 (Record.Retract { sid = "s1"; mid = 1 });
  Journal.close j2;
  let segments = List.sort compare (Array.to_list (Sys.readdir dir)) in
  check_bool "two segments on disk" true
    (segments = [ "segment-00000001.wal"; "segment-00000002.wal" ]);
  let r = Journal.recover dir in
  check_int "records across segments" 4 r.Journal.records;
  match r.Journal.entries with
  | [ e ] ->
    check_int "retract from the second segment applied" 1
      (List.length (Session.measurements e.Journal.session))
  | es -> Alcotest.failf "expected one session, got %d" (List.length es)

(* {1 Session.restore validation} *)

let test_restore_validation () =
  let divider () = Library.voltage_divider () in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s must raise Invalid_argument" name
  in
  expect_invalid "duplicate ids" (fun () ->
      Session.restore
        ~measurements:[ (1, Q.voltage "mid", mid_v); (1, Q.voltage "in", in_v) ]
        ~next_id:2 ~steps:2 (divider ()));
  expect_invalid "non-positive id" (fun () ->
      Session.restore
        ~measurements:[ (0, Q.voltage "mid", mid_v) ]
        ~next_id:1 ~steps:1 (divider ()));
  expect_invalid "next_id not past ids" (fun () ->
      Session.restore
        ~measurements:[ (3, Q.voltage "mid", mid_v) ]
        ~next_id:3 ~steps:1 (divider ()));
  expect_invalid "steps below survivors" (fun () ->
      Session.restore
        ~measurements:[ (1, Q.voltage "mid", mid_v) ]
        ~next_id:2 ~steps:0 (divider ()));
  (* a valid restore is bit-identical to the session it mirrors *)
  let live = Session.create (divider ()) in
  ignore (Session.add_measurement live (Q.voltage "mid") mid_v);
  ignore (Session.add_measurement live (Q.voltage "in") in_v);
  ignore (Session.retract live ~id:1);
  let restored =
    Session.restore ~measurements:(meas_triples live)
      ~next_id:(Session.next_id live) ~steps:(Session.steps live) (divider ())
  in
  check_bool "restored measurements" true
    (meas_triples restored = meas_triples live);
  check_int "restored next_id" (Session.next_id live) (Session.next_id restored);
  check_bool "restored diagnosis identical" true
    (String.equal
       (Oracle.result_fingerprint (Session.diagnoses restored))
       (Oracle.result_fingerprint (Session.diagnoses live)));
  check_int "restored add continues the id sequence" (Session.next_id live)
    (Session.add_measurement restored (Q.voltage "mid") mid_v).Session.id

(* {1 Script replay commands} *)

let test_script_observe_parse () =
  (match Script.parse_line "observe mid 0x1.3p1 0x1.4p1 0x1p-4 0x1p-4" with
  | Ok (Some (Script.Observe (q, v))) ->
    check_bool "quantity" true (Q.equal q (Q.voltage "mid"));
    check_bool "hex floats parsed" true
      (v = I.make ~m1:0x1.3p1 ~m2:0x1.4p1 ~alpha:0x1p-4 ~beta:0x1p-4)
  | Ok _ -> Alcotest.fail "observe line not parsed as Observe"
  | Error m -> Alcotest.failf "observe line rejected: %s" m);
  (match Script.parse_line "refine-interval 2 1.0 2.0 0.5 0.5" with
  | Ok (Some (Script.Refine_interval (2, v))) ->
    check_bool "interval" true (v = I.make ~m1:1.0 ~m2:2.0 ~alpha:0.5 ~beta:0.5)
  | Ok _ -> Alcotest.fail "refine-interval line not parsed"
  | Error m -> Alcotest.failf "refine-interval rejected: %s" m);
  (match Script.parse_line "observe mid 2.0 1.0 0 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inverted core must be rejected");
  match Script.parse_line "observe mid 1.0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing fields must be rejected"

let test_script_replay () =
  let session = Session.create (Library.voltage_divider ()) in
  (match
     Script.replay ~session
       [
         Script.Observe (Q.voltage "mid", mid_v);
         Script.Observe (Q.voltage "in", in_v);
         Script.Refine_interval (1, I.number 0.03 ~spread:0.04);
         Script.Retract 2;
       ]
   with
  | Ok () -> ()
  | Error m -> Alcotest.failf "replay failed: %s" m);
  (match meas_triples session with
  | [ (1, _, v) ] -> check_bool "refined" true (v = I.number 0.03 ~spread:0.04)
  | ms -> Alcotest.failf "expected one measurement, got %d" (List.length ms));
  match Script.replay ~session [ Script.Retract 99 ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "retract of unknown id must fail the replay"

(* {1 Seeded crash injection: the 300-case acceptance loop} *)

let test_crash_cases () =
  let failures = ref [] in
  for seed = 0 to 299 do
    match Chaos.check_crash seed with
    | Ok () -> ()
    | Error m -> failures := (seed, m) :: !failures
  done;
  match !failures with
  | [] -> ()
  | (seed, m) :: _ as all ->
    Alcotest.failf "%d/300 crash cases diverged; first: seed %d: %s"
      (List.length all) seed m

(* {1 kill -9 end to end through the CLI} *)

let cli =
  let candidates =
    [
      Filename.concat ".." (Filename.concat "bin" "flames_cli.exe");
      "_build/default/bin/flames_cli.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "flames_cli.exe not found (build bin/ first)"

type served = { pid : int; port : int; out : in_channel }

let start_served dir =
  let r, w = Unix.pipe ~cloexec:false () in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process cli
      [|
        cli; "serve"; "--port"; "0"; "--workers"; "1"; "--journal"; dir;
        "--fsync"; "always";
      |]
      devnull w Unix.stderr
  in
  Unix.close w;
  Unix.close devnull;
  let out = Unix.in_channel_of_descr r in
  (* "flames_serve <v> listening on 127.0.0.1:<port> (1 workers)" — and
     printed only after recovery, so the service is ready once we see it *)
  let line =
    try input_line out
    with End_of_file ->
      ignore (Unix.waitpid [] pid);
      Alcotest.fail "served process exited before announcing its port"
  in
  let port =
    try Scanf.sscanf (String.trim line) "flames_serve %s listening on %s@:%d (%_d workers)"
          (fun _ _ p -> p)
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      Alcotest.failf "cannot parse port from %S" line
  in
  { pid; port; out }

let request ~port ?(meth = "POST") ?(body = "{}") path =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Http.write_request fd ~headers:[] ~meth ~path body;
      match Http.read_response (Http.conn fd) with
      | Ok r -> r
      | Error _ -> Alcotest.fail "no parsable response")

(* diagnosis JSON minus the timing field, for cross-restart comparison *)
let stable_body (r : Http.response) =
  match Json.parse_result r.Http.resp_body with
  | Error m -> Alcotest.failf "body is not JSON (%s): %s" m r.Http.resp_body
  | Ok (Json.Obj fields) ->
    Json.to_string
      (Json.Obj (List.filter (fun (k, _) -> k <> "elapsed_ms") fields))
  | Ok j -> Json.to_string j

let test_kill9_e2e () =
  with_dir @@ fun dir ->
  let s1 = start_served dir in
  let killed = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !killed then (try Unix.kill s1.pid Sys.sigkill with Unix.Unix_error _ -> ());
      close_in_noerr s1.out)
  @@ fun () ->
  let created =
    request ~port:s1.port "/session/create" ~body:{|{"circuit": "divider"}|}
  in
  check_int "create status" 200 created.Http.status;
  let sid =
    match Option.bind (Json.mem "session" (Json.parse created.Http.resp_body)) Json.str_opt with
    | Some id -> id
    | None -> Alcotest.fail "no session id"
  in
  let step port verb body =
    request ~port (Printf.sprintf "/session/%s/%s" sid verb) ~body
  in
  check_int "measure mid" 200
    (step s1.port "measure" {|{"node": "mid", "value": 0.02, "spread": 0.05}|}).Http.status;
  check_int "measure in" 200
    (step s1.port "measure" {|{"node": "in", "value": 10.0, "spread": 0.1}|}).Http.status;
  let before = stable_body (step s1.port "diagnoses" "{}") in
  check_bool "symptomatic before the crash" true (contains before "\"healthy\": false" || contains before "\"healthy\":false");
  (* the crash: no drain, no snapshot, the acked appends must carry it *)
  Unix.kill s1.pid Sys.sigkill;
  killed := true;
  ignore (Unix.waitpid [] s1.pid);
  close_in_noerr s1.out;
  let s2 = start_served dir in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill s2.pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] s2.pid);
      close_in_noerr s2.out)
  @@ fun () ->
  let ready = request ~port:s2.port ~meth:"GET" ~body:"" "/readyz" in
  check_int "ready after recovery" 200 ready.Http.status;
  let after = stable_body (step s2.port "diagnoses" "{}") in
  check_string "diagnosis survives kill -9 bit-for-bit" before after;
  (* the restarted server keeps journaling: a further step works *)
  check_int "retract after restart" 200
    (step s2.port "retract" {|{"id": 1}|}).Http.status;
  let metrics = request ~port:s2.port ~meth:"GET" ~body:"" "/metrics" in
  check_bool "recovery counted" true
    (contains metrics.Http.resp_body "flames_store_recovered_records_total");
  check_bool "restore counted" true
    (contains metrics.Http.resp_body "flames_serve_sessions_restored_total 1");
  check_bool "ready gauge up" true
    (contains metrics.Http.resp_body "flames_serve_ready 1")

let () =
  Alcotest.run "flames_store"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip and crc" `Quick test_frame_roundtrip;
          Alcotest.test_case "torn and corrupt detection" `Quick
            test_frame_damage;
        ] );
      ( "record",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "floats are bit-exact" `Quick
            test_record_bit_exactness;
          Alcotest.test_case "decode errors" `Quick test_record_decode_errors;
        ] );
      ( "journal",
        [
          Alcotest.test_case "append then recover" `Quick test_journal_roundtrip;
          Alcotest.test_case "close record drops the session" `Quick
            test_journal_close_record;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "corrupt frame" `Quick test_journal_corrupt_frame;
          Alcotest.test_case "rotation compacts" `Quick test_journal_rotation;
          Alcotest.test_case "two-phase rotation keeps concurrent appends"
            `Quick test_journal_two_phase_rotation;
          Alcotest.test_case "idle tail synced by sync_if_due" `Quick
            test_journal_sync_if_due;
          Alcotest.test_case "missing directory" `Quick test_journal_missing_dir;
          Alcotest.test_case "restart opens a fresh segment" `Quick
            test_journal_open_never_reuses_segments;
        ] );
      ( "session",
        [
          Alcotest.test_case "restore validation and equivalence" `Quick
            test_restore_validation;
          Alcotest.test_case "observe/refine-interval parse" `Quick
            test_script_observe_parse;
          Alcotest.test_case "replay" `Quick test_script_replay;
        ] );
      ( "crash",
        [
          Alcotest.test_case "300 seeded kill-mid-write cases" `Quick
            test_crash_cases;
          Alcotest.test_case "kill -9 through the CLI" `Quick test_kill9_e2e;
        ] );
    ]
