(* Unit and property tests for the fuzzy substrate: intervals, arithmetic,
   piecewise integration, consistency degrees, linguistic scales, fuzzy
   entropy and t-norms. *)

module I = Flames_fuzzy.Interval
module A = Flames_fuzzy.Arith
module P = Flames_fuzzy.Piecewise
module C = Flames_fuzzy.Consistency
module L = Flames_fuzzy.Linguistic
module E = Flames_fuzzy.Entropy
module T = Flames_fuzzy.Tnorm
module K = Flames_fuzzy.Kernel

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let interval =
  Alcotest.testable I.pp (fun a b -> I.equal ~eps:1e-9 a b)

(* {1 Interval} *)

let test_make_valid () =
  let v = I.make ~m1:1. ~m2:2. ~alpha:0.5 ~beta:0.25 in
  Alcotest.(check (pair (float 0.) (float 0.))) "core" (1., 2.) (I.core v);
  Alcotest.(check (pair (float 1e-9) (float 1e-9)))
    "support" (0.5, 2.25) (I.support v)

let test_make_invalid () =
  let invalid f = Alcotest.check_raises "Invalid" (I.Invalid "") f in
  let expect_invalid f =
    match f () with
    | exception I.Invalid _ -> ()
    | _ -> Alcotest.fail "expected Interval.Invalid"
  in
  ignore invalid;
  expect_invalid (fun () -> I.make ~m1:2. ~m2:1. ~alpha:0. ~beta:0.);
  expect_invalid (fun () -> I.make ~m1:0. ~m2:1. ~alpha:(-1.) ~beta:0.);
  expect_invalid (fun () -> I.make ~m1:0. ~m2:1. ~alpha:0. ~beta:(-0.1));
  expect_invalid (fun () -> I.make ~m1:Float.nan ~m2:1. ~alpha:0. ~beta:0.)

let test_uniform_representation () =
  (* the paper's uniform coverage: crisp number, crisp interval, fuzzy
     number, fuzzy interval *)
  Alcotest.check interval "crisp number"
    (I.make ~m1:3. ~m2:3. ~alpha:0. ~beta:0.) (I.crisp 3.);
  Alcotest.check interval "crisp interval"
    (I.make ~m1:2.95 ~m2:3.05 ~alpha:0. ~beta:0.)
    (I.crisp_interval 2.95 3.05);
  Alcotest.check interval "fuzzy number"
    (I.make ~m1:3. ~m2:3. ~alpha:0.05 ~beta:0.05)
    (I.number 3. ~spread:0.05)

let test_membership_shape () =
  (* fig. 1: rising flank, core at 1, falling flank *)
  let v = I.make ~m1:2. ~m2:4. ~alpha:1. ~beta:2. in
  check_float "left of support" 0. (I.membership v 0.9);
  check_float "mid left flank" 0.5 (I.membership v 1.5);
  check_float "core left edge" 1. (I.membership v 2.);
  check_float "core inside" 1. (I.membership v 3.);
  check_float "core right edge" 1. (I.membership v 4.);
  check_float "mid right flank" 0.5 (I.membership v 5.);
  check_float "right of support" 0. (I.membership v 6.1)

let test_membership_point () =
  let v = I.crisp 2. in
  check_float "at point" 1. (I.membership v 2.);
  check_float "off point" 0. (I.membership v 2.0001)

let test_alpha_cut () =
  let v = I.make ~m1:2. ~m2:4. ~alpha:1. ~beta:2. in
  (match I.alpha_cut v 1. with
  | Some (lo, hi) ->
    check_float "cut at 1 lo" 2. lo;
    check_float "cut at 1 hi" 4. hi
  | None -> Alcotest.fail "alpha cut at 1");
  (match I.alpha_cut v 0.5 with
  | Some (lo, hi) ->
    check_float "cut at .5 lo" 1.5 lo;
    check_float "cut at .5 hi" 5. hi
  | None -> Alcotest.fail "alpha cut at 0.5");
  check_bool "cut at 0 undefined" true (I.alpha_cut v 0. = None);
  check_bool "cut above 1 undefined" true (I.alpha_cut v 1.1 = None)

let test_area_and_centroid () =
  let v = I.make ~m1:2. ~m2:4. ~alpha:1. ~beta:1. in
  check_float "area" 3. (I.area v);
  check_float "centroid symmetric" 3. (I.centroid v);
  check_float "area crisp" 0. (I.area (I.crisp 5.));
  check_float "centroid crisp" 5. (I.centroid (I.crisp 5.));
  (* asymmetric flanks pull the centroid towards the heavy side *)
  let skew = I.make ~m1:2. ~m2:2. ~alpha:0. ~beta:2. in
  check_bool "skewed centroid right" true (I.centroid skew > 2.)

let test_contains_overlap () =
  let big = I.make ~m1:1. ~m2:5. ~alpha:1. ~beta:1. in
  let small = I.make ~m1:2. ~m2:3. ~alpha:0.5 ~beta:0.5 in
  check_bool "contains" true (I.contains big small);
  check_bool "not contains" false (I.contains small big);
  check_bool "overlap" true (I.overlap big small);
  let far = I.crisp 100. in
  check_bool "no overlap" false (I.overlap big far)

(* {1 Arithmetic} *)

let test_add_paper_formula () =
  (* M ⊕ N = [m1+n1, m2+n2, α+α', β+β'] — section 3.2 *)
  let m = I.make ~m1:1. ~m2:2. ~alpha:0.1 ~beta:0.2 in
  let n = I.make ~m1:10. ~m2:20. ~alpha:0.3 ~beta:0.4 in
  Alcotest.check interval "add"
    (I.make ~m1:11. ~m2:22. ~alpha:0.4 ~beta:0.6)
    (A.add m n)

let test_sub_paper_formula () =
  (* M ⊖ N = [m1−n2, m2−n1, α+β', β+α'] *)
  let m = I.make ~m1:1. ~m2:2. ~alpha:0.1 ~beta:0.2 in
  let n = I.make ~m1:10. ~m2:20. ~alpha:0.3 ~beta:0.4 in
  Alcotest.check interval "sub"
    (I.make ~m1:(-19.) ~m2:(-8.) ~alpha:0.5 ~beta:0.5)
    (A.sub m n)

let test_mul_fig2_numbers () =
  (* the paper's fig-2 table: crisp Va times fuzzy gains *)
  let va = I.crisp_interval 2.95 3.05 in
  let amp1 = I.number 1. ~spread:0.05 in
  let vb = A.mul va amp1 in
  Alcotest.check interval "Vb"
    (I.make ~m1:2.95 ~m2:3.05 ~alpha:0.1475 ~beta:0.1525)
    vb;
  let amp2 = I.number 2. ~spread:0.05 in
  let vc = A.mul vb amp2 in
  check_float_loose "Vc m1" 5.9 vc.I.m1;
  check_float_loose "Vc m2" 6.1 vc.I.m2;
  check_float_loose "Vc alpha" 0.435125 vc.I.alpha;
  check_float_loose "Vc beta" 0.465125 vc.I.beta;
  let vd = A.add vb vc in
  check_float_loose "Vd alpha (paper 0.58)" 0.582625 vd.I.alpha;
  check_float_loose "Vd beta (paper 0.62)" 0.617625 vd.I.beta

let test_mul_signs () =
  let neg = I.make ~m1:(-3.) ~m2:(-2.) ~alpha:0.5 ~beta:0.5 in
  let pos = I.make ~m1:4. ~m2:5. ~alpha:0.5 ~beta:0.5 in
  let p = A.mul neg pos in
  check_float "core lo" (-15.) p.I.m1;
  check_float "core hi" (-8.) p.I.m2;
  (* support hull: [-3.5, -1.5] × [3.5, 5.5] = [-19.25, -5.25] *)
  let lo, hi = I.support p in
  check_float "support lo" (-19.25) lo;
  check_float "support hi" (-5.25) hi

let test_div_and_inv () =
  let m = I.make ~m1:6. ~m2:8. ~alpha:1. ~beta:1. in
  let two = I.crisp 2. in
  let d = A.div m two in
  Alcotest.check interval "div by crisp"
    (I.make ~m1:3. ~m2:4. ~alpha:0.5 ~beta:0.5)
    d;
  let spanning = I.make ~m1:(-1.) ~m2:1. ~alpha:0.5 ~beta:0.5 in
  (match A.inv spanning with
  | exception A.Undefined _ -> ()
  | _ -> Alcotest.fail "inverse through zero must be undefined");
  match A.div m spanning with
  | exception A.Undefined _ -> ()
  | _ -> Alcotest.fail "division through zero must be undefined"

let test_scale_negative () =
  let v = I.make ~m1:1. ~m2:2. ~alpha:0.1 ~beta:0.3 in
  Alcotest.check interval "scale -1 mirrors flanks"
    (I.make ~m1:(-2.) ~m2:(-1.) ~alpha:0.3 ~beta:0.1)
    (A.scale (-1.) v);
  Alcotest.check interval "neg = scale -1" (A.neg v) (A.scale (-1.) v)

let test_monotone_maps () =
  let v = I.make ~m1:4. ~m2:9. ~alpha:3. ~beta:7. in
  let r = A.map_increasing Float.sqrt v in
  check_float "sqrt core lo" 2. r.I.m1;
  check_float "sqrt core hi" 3. r.I.m2;
  let lo, hi = I.support r in
  check_float "sqrt support lo" 1. lo;
  check_float "sqrt support hi" 4. hi;
  let d = A.map_decreasing (fun x -> -.x) v in
  check_float "decreasing flips core" (-9.) d.I.m1

let test_log2 () =
  let v = I.make ~m1:2. ~m2:4. ~alpha:1. ~beta:4. in
  let r = A.log2 v in
  check_float "log2 core lo" 1. r.I.m1;
  check_float "log2 core hi" 2. r.I.m2;
  match A.log2 (I.make ~m1:1. ~m2:2. ~alpha:1. ~beta:0.) with
  | exception A.Undefined _ -> ()
  | _ -> Alcotest.fail "log2 touching zero must be undefined"

let test_fmin_fmax () =
  let a = I.make ~m1:1. ~m2:3. ~alpha:0.5 ~beta:0.5 in
  let b = I.make ~m1:2. ~m2:2.5 ~alpha:0.25 ~beta:1. in
  let mi = A.fmin a b and ma = A.fmax a b in
  check_float "fmin core lo" 1. mi.I.m1;
  check_float "fmin core hi" 2.5 mi.I.m2;
  check_float "fmax core lo" 2. ma.I.m1;
  check_float "fmax core hi" 3. ma.I.m2

let test_clamp () =
  let v = I.make ~m1:(-0.5) ~m2:1.5 ~alpha:1. ~beta:1. in
  let c = A.clamp ~lo:0. ~hi:1. v in
  let lo, hi = I.support c in
  check_float "clamp lo" 0. lo;
  check_float "clamp hi" 1. hi

let test_sum_empty () =
  Alcotest.check interval "empty sum" (I.crisp 0.) (A.sum [])

(* {1 Piecewise} *)

let test_min_area_disjoint () =
  let a = I.make ~m1:0. ~m2:1. ~alpha:0.5 ~beta:0.5 in
  let b = I.make ~m1:10. ~m2:11. ~alpha:0.5 ~beta:0.5 in
  check_float "disjoint min area" 0. (P.min_area a b)

let test_min_area_identical () =
  let a = I.make ~m1:0. ~m2:2. ~alpha:1. ~beta:1. in
  check_float "identical min area = area" (I.area a) (P.min_area a a)

let test_min_max_area_sum () =
  (* min + max = sum of both areas, pointwise *)
  let a = I.make ~m1:0. ~m2:2. ~alpha:1. ~beta:1. in
  let b = I.make ~m1:1. ~m2:3. ~alpha:0.5 ~beta:2. in
  check_float_loose "min+max = a+b"
    (I.area a +. I.area b)
    (P.min_area a b +. P.max_area a b)

let test_height_of_min () =
  let a = I.make ~m1:0. ~m2:1. ~alpha:0. ~beta:1. in
  let b = I.make ~m1:2. ~m2:3. ~alpha:1. ~beta:0. in
  (* flanks cross at x = 1.5 where both memberships are 0.5 *)
  check_float_loose "crossing height" 0.5 (P.height_of_min a b);
  check_float "contained height" 1.
    (P.height_of_min a (I.make ~m1:0. ~m2:4. ~alpha:0. ~beta:0.))

let test_intersection_hull () =
  let a = I.make ~m1:0. ~m2:2. ~alpha:0.5 ~beta:0.5 in
  let b = I.make ~m1:1. ~m2:3. ~alpha:0.5 ~beta:0.5 in
  (match P.intersection_hull a b with
  | Some h ->
    check_float "hull core lo" 1. h.I.m1;
    check_float "hull core hi" 2. h.I.m2
  | None -> Alcotest.fail "expected overlap");
  check_bool "disjoint hull" true
    (P.intersection_hull a (I.crisp 100.) = None)

(* {1 Consistency} *)

let test_dc_included () =
  let vm = I.make ~m1:1. ~m2:2. ~alpha:0.1 ~beta:0.1 in
  let vn = I.make ~m1:0. ~m2:3. ~alpha:1. ~beta:1. in
  check_float "Vm ⊆ Vn gives 1" 1. (C.dc ~measured:vm ~nominal:vn)

let test_dc_disjoint () =
  check_float "disjoint gives 0" 0.
    (C.dc ~measured:(I.number 1. ~spread:0.1) ~nominal:(I.number 5. ~spread:0.1))

let test_dc_point_degenerate () =
  (* the paper's fig-5 arithmetic: membership of 105 µA in
     [-1, 100, 0, 10] µA is 0.5 *)
  let bound = I.make ~m1:(-1.) ~m2:100. ~alpha:0. ~beta:10. in
  check_float "Ir1 = 105" 0.5 (C.dc ~measured:(I.crisp 105.) ~nominal:bound);
  check_float "Ir2 = 200" 0. (C.dc ~measured:(I.crisp 200.) ~nominal:bound);
  check_float "Ir = 50 inside" 1. (C.dc ~measured:(I.crisp 50.) ~nominal:bound)

let test_dc_partial () =
  let vm = I.make ~m1:0.9 ~m2:1.1 ~alpha:0.1 ~beta:0.1 in
  let vn = I.make ~m1:1.05 ~m2:2. ~alpha:0.1 ~beta:0.1 in
  let d = C.dc ~measured:vm ~nominal:vn in
  check_bool "partial in (0,1)" true (d > 0. && d < 1.)

let test_verdict_directions () =
  let nominal = I.number 10. ~spread:0.5 in
  let v_low = C.verdict ~measured:(I.number 8. ~spread:0.1) ~nominal in
  check_bool "low" true (v_low.C.direction = C.Low);
  let v_high = C.verdict ~measured:(I.number 12. ~spread:0.1) ~nominal in
  check_bool "high" true (v_high.C.direction = C.High);
  let v_in = C.verdict ~measured:(I.number 10. ~spread:0.1) ~nominal in
  check_bool "within" true (v_in.C.direction = C.Within)

let test_signed_dc () =
  let nominal = I.number 10. ~spread:0.5 in
  check_float "full low conflict prints -1" (-1.)
    (C.signed_dc ~measured:(I.crisp 5.) ~nominal);
  check_float "full high conflict prints +1" 1.
    (C.signed_dc ~measured:(I.crisp 15.) ~nominal);
  check_bool "partial low is negative" true
    (C.signed_dc ~measured:(I.number 9.6 ~spread:0.1) ~nominal < 0.)

let test_classify_cases () =
  let i = I.make in
  let inner = i ~m1:4. ~m2:6. ~alpha:0.5 ~beta:0.5 in
  let outer = i ~m1:3. ~m2:7. ~alpha:1. ~beta:1. in
  check_bool "split measured in nominal" true
    (C.classify inner outer = C.Split_measured_in_nominal);
  check_bool "split nominal in measured" true
    (C.classify outer inner = C.Split_nominal_in_measured);
  check_bool "conflict" true
    (C.classify (I.crisp 0.) (I.crisp 1.) = C.Conflict);
  check_bool "corroboration" true (C.classify inner inner = C.Corroboration);
  match C.classify (i ~m1:4. ~m2:5. ~alpha:0.5 ~beta:0.5)
          (i ~m1:5.2 ~m2:6. ~alpha:0.5 ~beta:0.5)
  with
  | C.Partial_conflict d -> check_bool "partial degree" true (d > 0. && d < 1.)
  | C.Corroboration | C.Split_measured_in_nominal
  | C.Split_nominal_in_measured | C.Conflict ->
    Alcotest.fail "expected partial conflict"

let test_nogood_degree () =
  let bound = I.make ~m1:(-1.) ~m2:100. ~alpha:0. ~beta:10. in
  check_float "paper's 0.5 nogood" 0.5
    (C.nogood_degree ~measured:(I.crisp 105.) ~nominal:bound)

(* {1 Linguistic} *)

let test_default_scale_terms () =
  check_int "five terms" 5 (List.length (L.terms L.default_scale))

let test_scale_validation () =
  let bad = L.term "bad" (I.make ~m1:0.5 ~m2:1.5 ~alpha:0. ~beta:0.) in
  (match L.make_scale [ bad ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "term outside [0,1] must be rejected");
  match L.make_scale [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty scale must be rejected"

let test_of_degree () =
  check_bool "0 is correct" true
    ((L.of_degree L.default_scale 0.).L.name = "correct");
  check_bool "1 is faulty" true
    ((L.of_degree L.default_scale 1.).L.name = "faulty");
  check_bool "0.5 is unknown" true
    ((L.of_degree L.default_scale 0.5).L.name = "unknown")

let test_best_match () =
  let estimation = I.make ~m1:0.7 ~m2:0.8 ~alpha:0.05 ~beta:0.05 in
  check_bool "likely faulty region" true
    ((L.best_match L.default_scale estimation).L.name = "likely-faulty")

(* {1 Entropy} *)

let test_entropy_certain_is_low () =
  (* a system of surely-correct components has (near) zero entropy *)
  let certain = List.init 3 (fun _ -> I.crisp 0.) in
  check_bool "certain entropy ~ 0" true
    (E.entropy_defuzzified certain < 0.05)

let test_entropy_uncertain_is_high () =
  let uncertain = List.init 3 (fun _ -> I.crisp 0.5) in
  let certain = List.init 3 (fun _ -> I.crisp 0.05) in
  check_bool "H(0.5) > H(0.05)" true
    (E.entropy_defuzzified uncertain > E.entropy_defuzzified certain)

let test_entropy_monotone_in_size () =
  let f = I.crisp 0.5 in
  check_bool "more components, more entropy" true
    (E.entropy_defuzzified [ f; f; f ] > E.entropy_defuzzified [ f; f ])

let test_crisp_entropy () =
  check_float "p=0 contributes 0" 0. (E.crisp_entropy [ 0. ]);
  check_float "p=1 contributes 0" 0. (E.crisp_entropy [ 1. ]);
  check_float "p=0.5 gives 1 bit" 1. (E.crisp_entropy [ 0.5 ]);
  check_float "additive" 2. (E.crisp_entropy [ 0.5; 0.5 ])

let test_entropy_fuzzy_term () =
  (* the fuzzy term of a crisp estimation is exactly H(p) *)
  let p = 0.3 in
  let t = E.term (I.crisp p) in
  check_float "crisp term is H(p)" (E.binary_entropy p) (I.centroid t);
  (* the image of a straddling interval peaks at H(1/2) = 1 *)
  let wide = E.term (I.crisp_interval 0.2 0.8) in
  check_float "straddling peak" 1. wide.I.m2;
  (* dependency respected: no spurious blow-up for near-certain values *)
  let almost_sure = E.term (I.make ~m1:0. ~m2:0.05 ~alpha:0. ~beta:0.05) in
  let _, hi = I.support almost_sure in
  check_bool "no dependency blow-up" true (hi <= E.binary_entropy 0.1 +. 1e-9)

(* {1 T-norms} *)

let test_tnorm_boundaries () =
  List.iter
    (fun t ->
      check_float "x ∧ 1 = x" 0.3 (T.tnorm t 0.3 1.);
      check_float "x ∧ 0 = 0" 0. (T.tnorm t 0.3 0.);
      check_float "x ∨ 0 = x" 0.3 (T.tconorm t 0.3 0.);
      check_float "x ∨ 1 = 1" 1. (T.tconorm t 0.3 1.))
    [ T.Minimum; T.Product; T.Lukasiewicz ]

let test_tnorm_order () =
  (* Łukasiewicz ≤ product ≤ minimum *)
  let a = 0.6 and b = 0.7 in
  check_bool "luk <= prod" true
    (T.tnorm T.Lukasiewicz a b <= T.tnorm T.Product a b);
  check_bool "prod <= min" true
    (T.tnorm T.Product a b <= T.tnorm T.Minimum a b)

let test_combine_all () =
  check_float "empty combines to 1" 1. (T.combine_all T.Minimum []);
  check_float "min fold" 0.2 (T.combine_all T.Minimum [ 0.5; 0.2; 0.9 ])

(* {1 Properties} *)

let interval_gen =
  let open QCheck.Gen in
  let* m1 = float_bound_inclusive 100. in
  let* w = float_bound_inclusive 10. in
  let* alpha = float_bound_inclusive 5. in
  let* beta = float_bound_inclusive 5. in
  return (I.make ~m1 ~m2:(m1 +. w) ~alpha ~beta)

let arb_interval = QCheck.make ~print:I.to_string interval_gen

let positive_interval_gen =
  let open QCheck.Gen in
  let* m1 = map (fun x -> 1. +. x) (float_bound_inclusive 50.) in
  let* w = float_bound_inclusive 10. in
  let* alpha = float_bound_inclusive 0.9 in
  let* beta = float_bound_inclusive 5. in
  return (I.make ~m1 ~m2:(m1 +. w) ~alpha ~beta)

let arb_positive = QCheck.make ~print:I.to_string positive_interval_gen

let prop name count arb f = QCheck.Test.make ~name ~count arb f

let properties =
  [
    prop "add commutative" 200
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) -> I.equal ~eps:1e-6 (A.add a b) (A.add b a));
    prop "add associative" 200
      QCheck.(triple arb_interval arb_interval arb_interval)
      (fun (a, b, c) ->
        I.equal ~eps:1e-6 (A.add (A.add a b) c) (A.add a (A.add b c)));
    prop "sub self contains zero" 200 arb_interval (fun a ->
        I.membership (A.sub a a) 0. = 1.);
    prop "neg involutive" 200 arb_interval (fun a ->
        I.equal ~eps:1e-6 (A.neg (A.neg a)) a);
    prop "mul commutative" 200
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) -> I.equal ~eps:1e-5 (A.mul a b) (A.mul b a));
    prop "mul support hull sound" 200
      QCheck.(pair arb_positive arb_positive)
      (fun (a, b) ->
        (* the product of the core midpoints must lie inside the product *)
        let x = I.midpoint a *. I.midpoint b in
        I.membership (A.mul a b) x = 1.);
    prop "inv cancels on positives" 200 arb_positive (fun a ->
        (* a ⊗ (1 ⊘ a) must contain 1 *)
        I.membership (A.mul a (A.inv a)) 1. = 1.);
    prop "membership in [0,1]" 500
      QCheck.(pair arb_interval (float_bound_inclusive 200.))
      (fun (a, x) ->
        let m = I.membership a x in
        m >= 0. && m <= 1.);
    prop "alpha-cut nested" 200 arb_interval (fun a ->
        match (I.alpha_cut a 0.25, I.alpha_cut a 0.75) with
        | Some (lo1, hi1), Some (lo2, hi2) -> lo1 <= lo2 && hi2 <= hi1
        | (None, _ | _, None) -> false);
    prop "dc in [0,1]" 200
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) ->
        let d = C.dc ~measured:a ~nominal:b in
        d >= 0. && d <= 1.);
    prop "dc reflexive" 200 arb_interval (fun a ->
        C.dc ~measured:a ~nominal:a >= 1. -. 1e-6);
    prop "dc = 1 when contained" 200 arb_interval (fun a ->
        let wider =
          I.make ~m1:(a.I.m1 -. 1.) ~m2:(a.I.m2 +. 1.)
            ~alpha:(a.I.alpha +. 1.) ~beta:(a.I.beta +. 1.)
        in
        C.dc ~measured:a ~nominal:wider >= 1. -. 1e-6);
    (* the compiled propagation path relies on the Kernel replicas being
       byte-for-byte equal to the list/closure originals — exact
       [Float.equal], not tolerance *)
    prop "kernel height_of_min bit-identical" 500
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) -> Float.equal (K.height_of_min a b) (P.height_of_min a b));
    prop "kernel min_area bit-identical" 500
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) -> Float.equal (K.min_area a b) (P.min_area a b));
    prop "kernel dc bit-identical" 500
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) ->
        Float.equal
          (K.dc ~measured:a ~nominal:b ())
          (C.dc ~measured:a ~nominal:b));
    prop "kernel consist = max(dc, height), shared scratch" 500
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) ->
        let scratch = Array.make 8 0. in
        Float.equal
          (K.consist ~scratch ~measured:a ~nominal:b)
          (Float.max
             (C.dc ~measured:a ~nominal:b)
             (P.height_of_min a b)));
    prop "min_area symmetric" 200
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) ->
        Float.abs (P.min_area a b -. P.min_area b a) < 1e-6);
    prop "min_area bounded by both areas" 200
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) ->
        let m = P.min_area a b in
        m <= I.area a +. 1e-6 && m <= I.area b +. 1e-6);
    prop "height_of_min in [0,1]" 200
      QCheck.(pair arb_interval arb_interval)
      (fun (a, b) ->
        let h = P.height_of_min a b in
        h >= 0. && h <= 1.);
    prop "height 1 on self" 200 arb_interval (fun a ->
        P.height_of_min a a >= 1. -. 1e-9);
    prop "centroid inside support" 200 arb_interval (fun a ->
        let lo, hi = I.support a in
        let c = I.centroid a in
        c >= lo -. 1e-9 && c <= hi +. 1e-9);
    prop "tnorm below operands" 300
      QCheck.(pair (float_bound_inclusive 1.) (float_bound_inclusive 1.))
      (fun (a, b) ->
        List.for_all
          (fun t ->
            let v = T.tnorm t a b in
            v <= a +. 1e-9 && v <= b +. 1e-9)
          [ T.Minimum; T.Product; T.Lukasiewicz ]);
    prop "tconorm above operands" 300
      QCheck.(pair (float_bound_inclusive 1.) (float_bound_inclusive 1.))
      (fun (a, b) ->
        List.for_all
          (fun t ->
            let v = T.tconorm t a b in
            v >= a -. 1e-9 && v >= b -. 1e-9)
          [ T.Minimum; T.Product; T.Lukasiewicz ]);
    prop "de morgan duality" 300
      QCheck.(pair (float_bound_inclusive 1.) (float_bound_inclusive 1.))
      (fun (a, b) ->
        List.for_all
          (fun t ->
            Float.abs
              (T.tconorm t a b -. T.neg (T.tnorm t (T.neg a) (T.neg b)))
            < 1e-9)
          [ T.Minimum; T.Product; T.Lukasiewicz ]);
    prop "entropy non-negative" 100
      QCheck.(list_of_size (QCheck.Gen.int_range 1 5)
                (QCheck.make (QCheck.Gen.float_bound_inclusive 1.)))
      (fun ps ->
        E.entropy_defuzzified (List.map I.crisp ps) >= -0.1);
  ]

(* {1 Regressions: degenerate Dc operands and direction symmetry} *)

let test_dc_degenerate_edges () =
  let is_nan (x : float) = x <> x in
  let point x = I.crisp x in
  let wide = I.make ~m1:1. ~m2:3. ~alpha:1. ~beta:1. in
  let cases =
    [
      ("point vs same point", point 2., point 2., 1.);
      ("point vs other point", point 2., point 5., 0.);
      ("point inside nominal", point 2., wide, 1.);
      ("point outside nominal", point 9., wide, 0.);
      ("wide vs point nominal", wide, point 2., 0.);
      ("disjoint supports", I.make ~m1:0. ~m2:1. ~alpha:0.5 ~beta:0.5,
       I.make ~m1:10. ~m2:11. ~alpha:0.5 ~beta:0.5, 0.);
      ("disjoint degenerate pair", point 0., point 1., 0.);
      ("zero-area crisp pair disjoint", I.crisp 1., I.crisp 2., 0.);
    ]
  in
  List.iter
    (fun (name, m, n, expected) ->
      let d = C.dc ~measured:m ~nominal:n in
      check_bool (name ^ " not NaN") false (is_nan d);
      check_float name expected d)
    cases

let test_direction_swap_stable () =
  let flip = function
    | C.Low -> C.High
    | C.High -> C.Low
    | C.Within -> C.Within
  in
  let pairs =
    [
      (I.make ~m1:0. ~m2:1. ~alpha:0.5 ~beta:0.5,
       I.make ~m1:2. ~m2:3. ~alpha:0.5 ~beta:0.5);
      (I.make ~m1:0. ~m2:1. ~alpha:0.5 ~beta:0.5,
       I.make ~m1:0.8 ~m2:2. ~alpha:0.5 ~beta:0.5);
      (* pure spread deviation: same centroid, different widths *)
      (I.number 0. ~spread:1., I.number 0. ~spread:4.);
      (I.crisp 5., I.make ~m1:4. ~m2:6. ~alpha:1. ~beta:1.);
    ]
  in
  List.iter
    (fun (a, b) ->
      let vab = C.verdict ~measured:a ~nominal:b
      and vba = C.verdict ~measured:b ~nominal:a in
      check_bool "direction flips under operand swap" true
        (vba.C.direction = flip vab.C.direction);
      (* and the signed display convention never disagrees in sign *)
      let sab = C.signed_dc ~measured:a ~nominal:b
      and sba = C.signed_dc ~measured:b ~nominal:a in
      check_bool "signed dc signs are coherent" true
        (Float.abs sab <= 1. && Float.abs sba <= 1.))
    pairs

let test_make_normalized () =
  Alcotest.check interval "reorders swapped core"
    (I.make ~m1:1. ~m2:2. ~alpha:0.5 ~beta:0.25)
    (I.normalized ~m1:2. ~m2:1. ~alpha:0.5 ~beta:0.25);
  Alcotest.check interval "clamps negative flanks"
    (I.make ~m1:0. ~m2:1. ~alpha:0. ~beta:0.)
    (I.normalized ~m1:0. ~m2:1. ~alpha:(-3.) ~beta:(-0.1));
  (match I.normalized ~m1:Float.infinity ~m2:1. ~alpha:0. ~beta:0. with
  | exception I.Invalid _ -> ()
  | _ -> Alcotest.fail "normalized must reject non-finite fields");
  match I.make ~m1:0. ~m2:Float.infinity ~alpha:0. ~beta:0. with
  | exception I.Invalid _ -> ()
  | _ -> Alcotest.fail "make must reject non-finite fields"

let () =
  Alcotest.run "fuzzy"
    [
      ( "interval",
        [
          Alcotest.test_case "make valid" `Quick test_make_valid;
          Alcotest.test_case "make invalid" `Quick test_make_invalid;
          Alcotest.test_case "uniform representation" `Quick
            test_uniform_representation;
          Alcotest.test_case "membership shape" `Quick test_membership_shape;
          Alcotest.test_case "membership point" `Quick test_membership_point;
          Alcotest.test_case "alpha cut" `Quick test_alpha_cut;
          Alcotest.test_case "area and centroid" `Quick test_area_and_centroid;
          Alcotest.test_case "contains/overlap" `Quick test_contains_overlap;
        ] );
      ( "arith",
        [
          Alcotest.test_case "add paper formula" `Quick test_add_paper_formula;
          Alcotest.test_case "sub paper formula" `Quick test_sub_paper_formula;
          Alcotest.test_case "mul fig2 numbers" `Quick test_mul_fig2_numbers;
          Alcotest.test_case "mul signs" `Quick test_mul_signs;
          Alcotest.test_case "div and inv" `Quick test_div_and_inv;
          Alcotest.test_case "scale negative" `Quick test_scale_negative;
          Alcotest.test_case "monotone maps" `Quick test_monotone_maps;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "fmin/fmax" `Quick test_fmin_fmax;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "empty sum" `Quick test_sum_empty;
        ] );
      ( "piecewise",
        [
          Alcotest.test_case "disjoint min area" `Quick test_min_area_disjoint;
          Alcotest.test_case "identical min area" `Quick
            test_min_area_identical;
          Alcotest.test_case "min+max sum" `Quick test_min_max_area_sum;
          Alcotest.test_case "height of min" `Quick test_height_of_min;
          Alcotest.test_case "intersection hull" `Quick test_intersection_hull;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "dc included" `Quick test_dc_included;
          Alcotest.test_case "dc disjoint" `Quick test_dc_disjoint;
          Alcotest.test_case "dc point (fig5)" `Quick test_dc_point_degenerate;
          Alcotest.test_case "dc partial" `Quick test_dc_partial;
          Alcotest.test_case "verdict directions" `Quick
            test_verdict_directions;
          Alcotest.test_case "signed dc" `Quick test_signed_dc;
          Alcotest.test_case "classify (fig4)" `Quick test_classify_cases;
          Alcotest.test_case "nogood degree" `Quick test_nogood_degree;
          Alcotest.test_case "degenerate dc edges" `Quick
            test_dc_degenerate_edges;
          Alcotest.test_case "direction swap stability" `Quick
            test_direction_swap_stable;
          Alcotest.test_case "normalized constructor" `Quick
            test_make_normalized;
        ] );
      ( "linguistic",
        [
          Alcotest.test_case "default scale" `Quick test_default_scale_terms;
          Alcotest.test_case "scale validation" `Quick test_scale_validation;
          Alcotest.test_case "of degree" `Quick test_of_degree;
          Alcotest.test_case "best match" `Quick test_best_match;
        ] );
      ( "entropy",
        [
          Alcotest.test_case "certain is low" `Quick
            test_entropy_certain_is_low;
          Alcotest.test_case "uncertain is high" `Quick
            test_entropy_uncertain_is_high;
          Alcotest.test_case "monotone in size" `Quick
            test_entropy_monotone_in_size;
          Alcotest.test_case "crisp entropy" `Quick test_crisp_entropy;
          Alcotest.test_case "fuzzy term brackets" `Quick
            test_entropy_fuzzy_term;
        ] );
      ( "tnorm",
        [
          Alcotest.test_case "boundaries" `Quick test_tnorm_boundaries;
          Alcotest.test_case "order" `Quick test_tnorm_order;
          Alcotest.test_case "combine all" `Quick test_combine_all;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) properties);
    ]
