(* End-to-end tests of the CLI failure discipline, through the real
   binary: malformed input exits 2 with a one-line message naming the
   file (and line), computational failures exit 1 with the structured
   error rendering, successes exit 0 — and no raw OCaml backtrace ever
   reaches the user. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Under `dune runtest` the working directory is _build/default/test
   (the executable and the bad_inputs fixtures are declared as deps in
   test/dune); under `dune exec test/test_cli.exe` it is the project
   root.  Probe for both layouts. *)
let cli =
  let candidates =
    [
      Filename.concat ".." (Filename.concat "bin" "flames_cli.exe");
      "_build/default/bin/flames_cli.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "flames_cli.exe not found (build bin/ first)"

let fixture name =
  let local = Filename.concat "bad_inputs" name in
  if Sys.file_exists local then local
  else Filename.concat "test" local

let run args =
  let out = Filename.temp_file "flames_cli" ".out" in
  let err = Filename.temp_file "flames_cli" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s >%s 2>%s" cli args (Filename.quote out)
         (Filename.quote err))
  in
  let slurp path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove path;
    s
  in
  (code, slurp out, slurp err)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let one_line s =
  String.length s > 0
  && s.[String.length s - 1] = '\n'
  && not (String.contains (String.sub s 0 (String.length s - 1)) '\n')

let expect_failure name args ~code:expected ~mentions =
  let code, _out, err = run args in
  check_int (name ^ ": exit code") expected code;
  check_bool (name ^ ": one-line stderr") true (one_line err);
  List.iter
    (fun m ->
      if not (contains err m) then
        Alcotest.failf "%s: stderr %S does not mention %S" name err m)
    mentions;
  check_bool
    (name ^ ": no backtrace")
    false
    (contains err "Raised at" || contains err "Fatal error")

let test_parse_errors () =
  let card = fixture "bad_card.net" in
  expect_failure "bad card" ("show " ^ card) ~code:2
    ~mentions:[ card; "line 4" ];
  let value = fixture "bad_value.net" in
  expect_failure "bad value" ("show " ^ value) ~code:2
    ~mentions:[ value; "line 4"; "10kohms" ];
  let batch = fixture "bad_batch.txt" in
  expect_failure "bad batch line" ("batch " ^ batch) ~code:2
    ~mentions:[ batch; "line 3"; "no-such-circuit" ]

let test_bad_arguments () =
  expect_failure "unknown circuit" "show no-such-circuit" ~code:2
    ~mentions:[ "unknown circuit" ];
  expect_failure "bad fault spec" "diagnose divider --fault bogus" ~code:2
    ~mentions:[ "bad fault spec" ];
  expect_failure "unknown component" "diagnose divider --fault r9.R=short"
    ~code:2
    ~mentions:[ "no such component" ];
  expect_failure "bad workers" "batch --workers 0" ~code:2
    ~mentions:[ "--workers" ]

let test_run_failures () =
  (* parses fine but has no DC solution: a computational failure, so
     exit 1 with the structured error, not 2 and not a backtrace *)
  let net = fixture "singular.net" in
  expect_failure "singular bias" ("bias " ^ net) ~code:1
    ~mentions:[ "singular" ];
  expect_failure "singular diagnose" ("diagnose " ^ net) ~code:1
    ~mentions:[ "singular" ]

let test_successes () =
  let code, out, _ = run "show divider" in
  check_int "show exits 0" 0 code;
  check_bool "show prints the netlist" true (contains out ".circuit");
  let code, out, _ = run "list" in
  check_int "list exits 0" 0 code;
  check_bool "list names divider" true (contains out "divider")

let test_version () =
  (* the one version constant: cmdliner's --version, the serve layer's
     GET /version and this assertion must never drift apart *)
  let code, out, _ = run "--version" in
  check_int "--version exits 0" 0 code;
  check_bool
    (Printf.sprintf "--version prints %s (got %S)" Flames_serve.Version.current
       out)
    true
    (contains out Flames_serve.Version.current)

let test_chaos_subcommand () =
  let code, out, _ =
    run "chaos --iters 1 --jobs 2 --workers 2 --seed 7"
  in
  check_int "chaos exits 0" 0 code;
  check_bool "chaos reports the root seed" true (contains out "seed 7")

let () =
  Alcotest.run "flames_cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "parse errors name file and line" `Quick
            test_parse_errors;
          Alcotest.test_case "bad arguments exit 2" `Quick test_bad_arguments;
          Alcotest.test_case "run failures exit 1" `Quick test_run_failures;
          Alcotest.test_case "successes exit 0" `Quick test_successes;
          Alcotest.test_case "--version prints the version" `Quick
            test_version;
          Alcotest.test_case "chaos subcommand" `Slow test_chaos_subcommand;
        ] );
    ]
