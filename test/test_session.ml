(* Unit tests for the persistent diagnosis session layer (lib/session):
   the session state machine itself, the troubleshooting script
   protocol, and replay of the corpus/sessions transcripts. *)

module Session = Flames_session.Session
module Script = Flames_session.Script
module Library = Flames_circuit.Library
module Q = Flames_circuit.Quantity
module I = Flames_fuzzy.Interval
module Budget = Flames_core.Budget
module Diagnose = Flames_core.Diagnose

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let divider () = Library.voltage_divider ()
let meas v = I.number v ~spread:0.05

(* {1 Session state machine} *)

let test_session_lifecycle () =
  let s = Session.create (divider ()) in
  check_int "no measurements" 0 (List.length (Session.measurements s));
  check_int "no steps" 0 (Session.steps s);
  let m1 = Session.add_measurement s (Q.voltage "mid") (meas 2.5) in
  let m2 = Session.add_measurement s (Q.voltage "in") (meas 5.0) in
  check_int "ids are distinct" (m1.Session.id + 1) m2.Session.id;
  check_int "two measurements" 2 (List.length (Session.measurements s));
  check_int "two steps" 2 (Session.steps s);
  (* insertion order is preserved *)
  (match Session.measurements s with
  | [ a; b ] ->
    check_int "first id" m1.Session.id a.Session.id;
    check_int "second id" m2.Session.id b.Session.id
  | _ -> Alcotest.fail "expected two measurements");
  check_bool "find live id" true
    (Session.find_measurement s ~id:m1.Session.id <> None);
  check_bool "retract live id" true (Session.retract s ~id:m1.Session.id);
  check_bool "retract is gone" false (Session.retract s ~id:m1.Session.id);
  check_bool "find retracted id" true
    (Session.find_measurement s ~id:m1.Session.id = None);
  check_int "one measurement left" 1 (List.length (Session.measurements s))

let test_session_refine_in_place () =
  let s = Session.create (divider ()) in
  let m1 = Session.add_measurement s (Q.voltage "mid") (meas 2.5) in
  let _m2 = Session.add_measurement s (Q.voltage "in") (meas 5.0) in
  (match Session.refine s ~id:m1.Session.id (meas 2.4) with
  | None -> Alcotest.fail "refine of a live id refused"
  | Some m ->
    check_int "same id" m1.Session.id m.Session.id;
    check_bool "new interval" true
      (I.equal ~eps:0. m.Session.interval (meas 2.4)));
  (* refined measurement keeps its position in the insertion order *)
  (match Session.measurements s with
  | [ a; _ ] -> check_int "still first" m1.Session.id a.Session.id
  | _ -> Alcotest.fail "expected two measurements");
  check_bool "refine unknown id" true (Session.refine s ~id:999 (meas 1.) = None);
  check_bool "retract unknown id" false (Session.retract s ~id:999)

let test_session_diagnoses_cached () =
  let s = Session.create (divider ()) in
  ignore (Session.add_measurement s (Q.voltage "mid") (meas 2.5));
  let r1 = Session.diagnoses s in
  let r2 = Session.diagnoses s in
  check_bool "cached result is reused" true (r1 == r2);
  ignore (Session.add_measurement s (Q.voltage "in") (meas 5.0));
  let r3 = Session.diagnoses s in
  check_bool "mutation invalidates the cache" true (r1 != r3)

let test_session_budget_not_cached () =
  (* a deviant measurement so the diagnosis has candidates to truncate *)
  let s =
    Session.create
      ~budget_spec:(Budget.spec ~max_candidates:1 ())
      (divider ())
  in
  ignore (Session.add_measurement s (Q.voltage "mid") (meas 1.0));
  let r1 = Session.diagnoses s in
  if r1.Diagnose.degraded then begin
    let r2 = Session.diagnoses s in
    check_bool "degraded results are recomputed" true (r1 != r2);
    check_bool "deterministic" true
      (List.length r1.Diagnose.diagnoses = List.length r2.Diagnose.diagnoses)
  end

let test_session_next_test_excludes_measured () =
  let s = Session.create (Library.three_stage_amplifier ()) in
  (match Session.next_test s with
  | None -> Alcotest.fail "no recommendation on a fresh session"
  | Some e ->
    (* measuring the recommended point removes it from later rounds *)
    let q = e.Flames_strategy.Best_test.test.Flames_strategy.Best_test.quantity in
    ignore (Session.add_measurement s q (meas 10.));
    (match Session.next_test s with
    | None -> ()
    | Some e' ->
      check_bool "recommended point not repeated" false
        (Q.equal q
           e'.Flames_strategy.Best_test.test.Flames_strategy.Best_test.quantity)));
  check_bool "estimations cover the components" true
    (List.length (Session.estimations s) > 0)

(* {1 Script parsing} *)

let parse_ok line =
  match Script.parse_line line with
  | Ok (Some c) -> c
  | Ok None -> Alcotest.failf "line %S parsed to nothing" line
  | Error e -> Alcotest.failf "line %S rejected: %s" line e

let test_script_parse_commands () =
  check_bool "circuit" true
    (parse_ok "circuit voltage_divider" = Script.Circuit "voltage_divider");
  check_bool "fault" true (parse_ok "fault r2.R=short" = Script.Fault "r2.R=short");
  check_bool "probe" true (parse_ok "probe n1" = Script.Probe "n1");
  check_bool "measure" true
    (parse_ok "measure mid 2.5" = Script.Measure ("mid", 2.5, None));
  check_bool "measure with spread" true
    (parse_ok "measure mid 2.5 0.1" = Script.Measure ("mid", 2.5, Some 0.1));
  check_bool "retract" true (parse_ok "retract 3" = Script.Retract 3);
  check_bool "refine" true
    (parse_ok "refine 2 2.4 0.02" = Script.Refine (2, 2.4, Some 0.02));
  check_bool "diagnoses" true (parse_ok "diagnoses" = Script.Diagnoses);
  check_bool "diagnose alias" true (parse_ok "diagnose" = Script.Diagnoses);
  check_bool "next" true (parse_ok "next" = Script.Next);
  check_bool "status" true (parse_ok "status" = Script.Status);
  check_bool "quit" true (parse_ok "quit" = Script.Quit);
  check_bool "case-insensitive" true (parse_ok "QUIT" = Script.Quit);
  check_bool "comment" true (Script.parse_line "# hello" = Ok None);
  check_bool "blank" true (Script.parse_line "   " = Ok None);
  check_bool "trailing comment" true
    (parse_ok "probe n1 # the divider tap" = Script.Probe "n1")

let test_script_parse_errors () =
  let rejected line =
    match Script.parse_line line with Error _ -> true | Ok _ -> false
  in
  check_bool "unknown command" true (rejected "frobnicate n1");
  check_bool "bad number" true (rejected "measure mid abc");
  check_bool "bad id" true (rejected "retract x");
  check_bool "negative imprecision" true (rejected "imprecision -1");
  check_bool "extra args" true (rejected "quit now");
  match Script.parse "circuit divider\nbogus\n" with
  | Error e ->
    check_bool "error names the line" true
      (contains ~sub:"line 2" e)
  | Ok _ -> Alcotest.fail "bogus line accepted"

(* {1 Script execution} *)

let run_script text =
  let out = Buffer.create 256 in
  let print line =
    Buffer.add_string out line;
    Buffer.add_char out '\n'
  in
  match Script.parse text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok commands -> (
    match Script.run ~print commands with
    | Error e -> Alcotest.failf "run: %s\noutput so far:\n%s" e (Buffer.contents out)
    | Ok session -> (session, Buffer.contents out))

let test_script_run_divider () =
  let session, out =
    run_script
      "circuit divider\n\
       fault r2.R=short\n\
       probe mid\n\
       diagnoses\n\
       status\n\
       quit\n"
  in
  (match session with
  | None -> Alcotest.fail "no session after the script"
  | Some s ->
    check_int "one measurement" 1 (List.length (Session.measurements s));
    let r = Session.diagnoses s in
    check_bool "shorted divider is not healthy" false (Diagnose.healthy r));
  check_bool "transcript mentions the suspect" true
    (contains ~sub:"suspect" out);
  check_bool "transcript shows the measurement id" true
    (contains ~sub:"[1]" out)

let test_script_run_retract_refine () =
  let session, _ =
    run_script
      "circuit divider\n\
       measure mid 2.5 0.05\n\
       measure in 5.0 0.05\n\
       retract 1\n\
       refine 2 4.9 0.02\n\
       status\n"
  in
  match session with
  | None -> Alcotest.fail "no session"
  | Some s -> (
    check_int "one measurement left" 1 (List.length (Session.measurements s));
    match Session.measurements s with
    | [ m ] ->
      check_int "the refined one" 2 m.Session.id;
      check_bool "narrowed" true
        (I.equal ~eps:0. m.Session.interval (I.number 4.9 ~spread:0.02))
    | _ -> Alcotest.fail "expected exactly one measurement")

let test_script_quit_stops () =
  let session, out =
    run_script "circuit divider\nquit\nprobe mid\n"
  in
  (match session with
  | Some s -> check_int "quit stopped the script" 0 (List.length (Session.measurements s))
  | None -> Alcotest.fail "no session");
  check_bool "no probe output" false (contains ~sub:"[1]" out)

let test_script_errors_name_the_line () =
  match Script.parse "circuit no_such_circuit\n" with
  | Error e -> Alcotest.failf "parse should accept: %s" e
  | Ok commands -> (
    match Script.run ~print:ignore commands with
    | Ok _ -> Alcotest.fail "unknown circuit accepted"
    | Error e ->
      check_bool "error names line 1" true
        (contains ~sub:"line 1" e);
      check_bool "error lists builtins" true
        (contains ~sub:"divider" e));
  match Script.parse "probe mid\n" with
  | Error e -> Alcotest.failf "parse should accept: %s" e
  | Ok commands -> (
    match Script.run ~print:ignore commands with
    | Ok _ -> Alcotest.fail "probe without circuit accepted"
    | Error e ->
      check_bool "points at the missing circuit" true
        (contains ~sub:"no circuit" e))

(* {1 Corpus transcripts} *)

let corpus_dir = "../corpus/sessions"

let corpus_scripts () =
  match Sys.readdir corpus_dir with
  | entries ->
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".session")
    |> List.sort compare
  | exception Sys_error _ -> []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_corpus_sessions () =
  let scripts = corpus_scripts () in
  check_bool "corpus has session transcripts" true (List.length scripts >= 2);
  List.iter
    (fun file ->
      let text = read_file (Filename.concat corpus_dir file) in
      match Script.parse text with
      | Error e -> Alcotest.failf "%s: parse: %s" file e
      | Ok commands -> (
        match Script.run ~print:ignore commands with
        | Error e -> Alcotest.failf "%s: %s" file e
        | Ok None -> Alcotest.failf "%s: no session" file
        | Ok (Some s) ->
          check_bool
            (file ^ " took measurements")
            true
            (List.length (Session.measurements s) > 0);
          (* the replayed session obeys the equivalence contract *)
          let scratch =
            Diagnose.run
              ~model:(Session.model s)
              (Session.netlist s)
              (List.map
                 (fun (m : Session.measurement) ->
                   (m.Session.quantity, m.Session.interval))
                 (Session.measurements s))
          in
          check_string
            (file ^ " equivalence")
            (Flames_check.Oracle.result_fingerprint scratch)
            (Flames_check.Oracle.result_fingerprint (Session.diagnoses s))))
    scripts

let () =
  Alcotest.run "session"
    [
      ( "session",
        [
          Alcotest.test_case "lifecycle" `Quick test_session_lifecycle;
          Alcotest.test_case "refine-in-place" `Quick test_session_refine_in_place;
          Alcotest.test_case "diagnoses-cached" `Quick test_session_diagnoses_cached;
          Alcotest.test_case "degraded-not-cached" `Quick
            test_session_budget_not_cached;
          Alcotest.test_case "next-test" `Slow
            test_session_next_test_excludes_measured;
        ] );
      ( "script",
        [
          Alcotest.test_case "parse-commands" `Quick test_script_parse_commands;
          Alcotest.test_case "parse-errors" `Quick test_script_parse_errors;
          Alcotest.test_case "run-divider" `Quick test_script_run_divider;
          Alcotest.test_case "retract-refine" `Quick test_script_run_retract_refine;
          Alcotest.test_case "quit-stops" `Quick test_script_quit_stops;
          Alcotest.test_case "runtime-errors" `Quick
            test_script_errors_name_the_line;
        ] );
      ( "corpus",
        [ Alcotest.test_case "replay-transcripts" `Slow test_corpus_sessions ] );
    ]
