(* Tests for the ATMS substrate: environments, weighted nogoods, label
   propagation, minimal hitting sets and candidate ranking. *)

module Env = Flames_atms.Env
module Envindex = Flames_atms.Envindex
module Nogood = Flames_atms.Nogood
module Hitting = Flames_atms.Hitting
module Atms = Flames_atms.Atms
module Candidates = Flames_atms.Candidates
module Metrics = Flames_obs.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let env_t = Alcotest.testable (Env.pp ~names:(Printf.sprintf "a%d")) Env.equal
let envs = Alcotest.(list env_t)
let e = Env.of_list

(* {1 Env} *)

let test_env_basics () =
  check_bool "empty is empty" true (Env.is_empty Env.empty);
  check_int "cardinal" 3 (Env.cardinal (e [ 1; 2; 3 ]));
  check_bool "mem" true (Env.mem 2 (e [ 1; 2 ]));
  Alcotest.check env_t "union" (e [ 1; 2; 3 ])
    (Env.union (e [ 1; 2 ]) (e [ 2; 3 ]));
  Alcotest.check env_t "inter" (e [ 2 ]) (Env.inter (e [ 1; 2 ]) (e [ 2; 3 ]));
  Alcotest.check env_t "diff" (e [ 1 ]) (Env.diff (e [ 1; 2 ]) (e [ 2; 3 ]));
  check_bool "subset" true (Env.subset (e [ 1 ]) (e [ 1; 2 ]));
  check_bool "not subset" false (Env.subset (e [ 1; 3 ]) (e [ 1; 2 ]));
  check_bool "disjoint" true (Env.disjoint (e [ 1 ]) (e [ 2 ]));
  Alcotest.(check (list int)) "to_list sorted" [ 1; 2; 9 ]
    (Env.to_list (e [ 9; 1; 2 ]))

let test_env_dedup () =
  check_int "duplicates collapse" 2 (Env.cardinal (e [ 1; 1; 2 ]))

(* ids straddling the 63-bit word boundaries: bit 62 is the top bit of
   word 0 (the sign bit of an OCaml int), 63 the bottom of word 1, 127
   the top half of word 2's edge *)
let boundary_ids = [ 62; 63; 64; 126; 127 ]

let test_env_word_boundaries () =
  List.iter
    (fun i ->
      let s = Env.singleton i in
      check_int (Printf.sprintf "singleton %d cardinal" i) 1 (Env.cardinal s);
      check_bool (Printf.sprintf "mem %d" i) true (Env.mem i s);
      check_bool (Printf.sprintf "not mem %d" (i - 1)) false (Env.mem (i - 1) s);
      check_bool (Printf.sprintf "not mem %d" (i + 1)) false (Env.mem (i + 1) s);
      Alcotest.(check (list int))
        (Printf.sprintf "to_list %d" i)
        [ i ] (Env.to_list s);
      Alcotest.(check (option int))
        (Printf.sprintf "choose %d" i)
        (Some i) (Env.choose s))
    boundary_ids;
  let all = e boundary_ids in
  check_int "boundary set cardinal" 5 (Env.cardinal all);
  Alcotest.(check (list int)) "boundary to_list sorted" boundary_ids (Env.to_list all);
  Alcotest.check env_t "union across words" all
    (Env.union (e [ 62; 63 ]) (e [ 64; 126; 127 ]));
  Alcotest.check env_t "inter across words" (e [ 63; 127 ])
    (Env.inter all (e [ 63; 127; 200 ]));
  Alcotest.check env_t "diff across words" (e [ 62; 64; 126 ])
    (Env.diff all (e [ 63; 127 ]));
  check_bool "subset across words" true (Env.subset (e [ 62; 127 ]) all);
  check_bool "not subset across words" false (Env.subset (e [ 62; 128 ]) all);
  check_bool "disjoint across words" true
    (Env.disjoint (e [ 62; 126 ]) (e [ 63; 127 ]));
  check_bool "compare orders low word first" true (Env.compare (e [ 62 ]) (e [ 63 ]) < 0);
  check_bool "prefix is smaller" true (Env.compare (e [ 62 ]) (e [ 62; 127 ]) < 0)

let test_env_interning () =
  (* structural round-trips through different construction paths must
     yield the same physical block *)
  check_bool "of_list twice" true (e [ 3; 70; 128 ] == e [ 3; 70; 128 ]);
  check_bool "of_list order-insensitive" true (e [ 128; 3; 70 ] == e [ 3; 70; 128 ]);
  check_bool "union round-trip" true
    (Env.union (e [ 3; 70 ]) (e [ 128 ]) == e [ 3; 70; 128 ]);
  check_bool "diff round-trip" true
    (Env.diff (e [ 3; 70; 128 ]) (e [ 70 ]) == e [ 3; 128 ]);
  check_bool "add round-trip" true (Env.add 70 (e [ 3; 128 ]) == e [ 3; 70; 128 ]);
  check_bool "inter round-trip" true
    (Env.inter (e [ 3; 70; 128 ]) (e [ 70; 200 ]) == e [ 70 ]);
  check_bool "empty is unique" true (Env.diff (e [ 5 ]) (e [ 5 ]) == Env.empty);
  check_int "hash stable" (Env.hash (e [ 3; 70; 128 ])) (Env.hash (e [ 128; 70; 3 ]));
  (* signature Bloom property on a subset pair *)
  check_bool "signature subset" true
    (Env.subset_word (Env.signature (e [ 3; 70 ])) (Env.signature (e [ 3; 70; 128 ])))

(* {1 Envindex} *)

let test_envindex_dominance () =
  let idx : unit Envindex.t = Envindex.create () in
  Envindex.add idx (e [ 1; 2 ]) 0.5 ();
  check_int "size" 1 (Envindex.size idx);
  check_bool "superset dominated" true (Envindex.is_dominated idx (e [ 1; 2; 3 ]) 0.5);
  check_bool "higher degree not dominated" false
    (Envindex.is_dominated idx (e [ 1; 2; 3 ]) 0.8);
  check_bool "disjoint not dominated" false (Envindex.is_dominated idx (e [ 4 ]) 0.1);
  Alcotest.(check (float 1e-9)) "max subset degree" 0.5
    (Envindex.max_subset_degree idx (e [ 1; 2; 9 ]));
  Alcotest.(check (float 1e-9)) "no subset" 0.
    (Envindex.max_subset_degree idx (e [ 1; 9 ]));
  check_int "removes dominated superset" 1
    (Envindex.remove_dominated idx (e [ 1 ]) 0.9);
  check_int "empty after removal" 0 (Envindex.size idx)

let test_envindex_filter_clear () =
  let idx : int Envindex.t = Envindex.create () in
  List.iteri (fun i ids -> Envindex.add idx (e ids) 1. i)
    [ [ 1 ]; [ 1; 2 ]; [ 3; 64 ]; [ 127 ] ];
  check_int "filter drops" 2
    (Envindex.filter idx (fun it -> Env.cardinal it.Envindex.env = 1));
  check_int "filter kept" 2 (Envindex.size idx);
  Envindex.clear idx;
  check_bool "cleared" true (Envindex.is_empty idx);
  check_bool "nothing dominates" false (Envindex.is_dominated idx (e [ 1 ]) 0.)

(* {1 Nogood} *)

let test_nogood_record_and_query () =
  let db = Nogood.create () in
  check_bool "record" true (Nogood.record db (e [ 1; 2 ]) 0.5);
  check_float "inconsistency superset" 0.5
    (Nogood.inconsistency db (e [ 1; 2; 3 ]));
  check_float "inconsistency other" 0. (Nogood.inconsistency db (e [ 3 ]));
  check_bool "not hard nogood" false (Nogood.is_nogood db (e [ 1; 2 ]));
  check_bool "soft at threshold" true
    (Nogood.is_nogood db ~threshold:0.5 (e [ 1; 2 ]))

let test_nogood_subsumption () =
  let db = Nogood.create () in
  ignore (Nogood.record db (e [ 1; 2 ]) 0.8);
  check_bool "weaker superset subsumed" false
    (Nogood.record db (e [ 1; 2; 3 ]) 0.5);
  check_bool "stronger superset kept" true
    (Nogood.record db (e [ 1; 2; 3 ]) 0.9);
  check_bool "hard subset recorded" true (Nogood.record db (e [ 1 ]) 1.);
  let entries = Nogood.entries db in
  check_int "weaker entries dropped" 1 (List.length entries);
  check_bool "the hard singleton remains" true
    (List.exists
       (fun (n : Nogood.entry) -> Env.equal n.Nogood.env (e [ 1 ]))
       entries)

let test_nogood_degree_zero_ignored () =
  let db = Nogood.create () in
  check_bool "zero degree ignored" false (Nogood.record db (e [ 1 ]) 0.);
  check_int "empty" 0 (Nogood.count db)

let test_nogood_same_env_keeps_max () =
  let db = Nogood.create () in
  ignore (Nogood.record db (e [ 1; 2 ]) 0.3);
  ignore (Nogood.record db (e [ 1; 2 ]) 0.7);
  check_float "max degree" 0.7 (Nogood.inconsistency db (e [ 1; 2 ]));
  check_bool "weaker same env rejected" false
    (Nogood.record db (e [ 1; 2 ]) 0.4)

let test_nogood_empty_env () =
  let db = Nogood.create () in
  ignore (Nogood.record db Env.empty 1.);
  check_bool "everything inconsistent" true (Nogood.is_nogood db (e [ 5 ]))

let test_nogood_entries_sorted () =
  let db = Nogood.create () in
  ignore (Nogood.record db (e [ 1; 2 ]) 0.4);
  ignore (Nogood.record db (e [ 3 ]) 0.9);
  match Nogood.entries db with
  | [ a; b ] ->
    check_float "strongest first" 0.9 a.Nogood.degree;
    check_float "weaker second" 0.4 b.Nogood.degree
  | _ -> Alcotest.fail "expected two entries"

(* {1 Hitting sets} *)

let test_hitting_empty_family () =
  Alcotest.check envs "empty family" [ Env.empty ]
    (Hitting.minimal_hitting_sets [])

let test_hitting_empty_conflict () =
  Alcotest.check envs "unsatisfiable" []
    (Hitting.minimal_hitting_sets [ Env.empty; e [ 1 ] ])

let test_hitting_paper_fig5 () =
  (* conflicts {r1,d1} and {r2,d1} → diagnoses {d1} and {r1,r2} *)
  let r1 = 0 and r2 = 1 and d1 = 2 in
  let sets = Hitting.minimal_hitting_sets [ e [ r1; d1 ]; e [ r2; d1 ] ] in
  Alcotest.check envs "fig5 diagnoses" [ e [ d1 ]; e [ r1; r2 ] ] sets

let test_hitting_minimality () =
  let family = [ e [ 1; 2 ]; e [ 2; 3 ]; e [ 1; 3 ] ] in
  let sets = Hitting.minimal_hitting_sets family in
  check_int "three pairs" 3 (List.length sets);
  List.iter
    (fun s ->
      check_int "cardinality 2" 2 (Env.cardinal s);
      check_bool "hits all" true (Hitting.hits_all s family))
    sets;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Env.equal a b) then
            check_bool "antichain" false (Env.subset a b))
        sets)
    sets

let test_hitting_single_common () =
  let sets =
    Hitting.minimal_hitting_sets [ e [ 1; 2 ]; e [ 1; 3 ]; e [ 1 ] ]
  in
  Alcotest.check envs "forced singleton" [ e [ 1 ] ] sets

let test_hitting_limit () =
  let family = List.init 10 (fun i -> e [ 2 * i; (2 * i) + 1 ]) in
  let sets = Hitting.minimal_hitting_sets ~limit:5 family in
  check_int "limit respected" 5 (List.length sets)

let test_hitting_duplicate_conflicts () =
  let sets = Hitting.minimal_hitting_sets [ e [ 1; 2 ]; e [ 1; 2 ] ] in
  check_int "duplicates collapse" 2 (List.length sets)

let test_hitting_presort_prunes () =
  (* Fixed family given largest-conflict-first: expanding the big
     conflict first floods the frontier with partial sets that complete
     candidates later subsume.  Presorting ascending by cardinality must
     produce the same hitting sets with strictly fewer subsumption
     prunes. *)
  let family = [ e [ 0; 1; 2; 3; 4 ]; e [ 0; 5 ]; e [ 5 ] ] in
  let prunes = Metrics.counter "flames_hitting_subsumption_prunes_total" in
  let run presort =
    let before = Metrics.counter_value prunes in
    let sets = Hitting.minimal_hitting_sets ~presort family in
    (sets, Metrics.counter_value prunes - before)
  in
  let unsorted, p_unsorted = run false in
  let sorted, p_sorted = run true in
  Alcotest.check envs "same hitting sets" unsorted sorted;
  check_bool
    (Printf.sprintf "prunes drop with presort (%d < %d)" p_sorted p_unsorted)
    true
    (p_sorted < p_unsorted)

(* {1 Hitting-set properties} *)

let conflict_family_gen =
  let open QCheck.Gen in
  let conflict = map e (list_size (int_range 1 3) (int_range 0 5)) in
  list_size (int_range 1 4) conflict

let arb_family =
  QCheck.make
    ~print:(fun f ->
      String.concat "; "
        (List.map
           (fun env ->
             "{"
             ^ String.concat "," (List.map string_of_int (Env.to_list env))
             ^ "}")
           f))
    conflict_family_gen

let hitting_properties =
  [
    QCheck.Test.make ~name:"every result hits all conflicts" ~count:100
      arb_family (fun family ->
        List.for_all
          (fun s -> Hitting.hits_all s family)
          (Hitting.minimal_hitting_sets family));
    QCheck.Test.make ~name:"results form an antichain" ~count:100 arb_family
      (fun family ->
        let sets = Hitting.minimal_hitting_sets family in
        List.for_all
          (fun a ->
            List.for_all
              (fun b -> Env.equal a b || not (Env.subset a b))
              sets)
          sets);
    QCheck.Test.make ~name:"removing any element breaks hitting" ~count:100
      arb_family (fun family ->
        List.for_all
          (fun s ->
            List.for_all
              (fun a -> not (Hitting.hits_all (Env.diff s (e [ a ])) family))
              (Env.to_list s))
          (Hitting.minimal_hitting_sets family));
  ]

(* {1 ATMS} *)

let test_atms_assumption_label () =
  let t = Atms.create () in
  let a = Atms.assumption t "a" in
  match Atms.label t a with
  | [ { Atms.env; degree } ] ->
    check_int "singleton env" 1 (Env.cardinal env);
    check_float "degree 1" 1. degree
  | _ -> Alcotest.fail "assumption label must be its own environment"

let test_atms_duplicate_assumption () =
  let t = Atms.create () in
  ignore (Atms.assumption t "a");
  match Atms.assumption t "a" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate assumption must be rejected"

let test_atms_justification_propagates () =
  let t = Atms.create () in
  let a = Atms.assumption t "a" and b = Atms.assumption t "b" in
  let n = Atms.node t "n" in
  Atms.justify t ~antecedents:[ a; b ] n;
  let envab = Atms.env_of_assumptions t [ a; b ] in
  check_bool "n in {a,b}" true (Atms.is_in t n envab);
  check_bool "n not in {a}" false
    (Atms.is_in t n (Atms.env_of_assumptions t [ a ]))

let test_atms_label_minimality () =
  let t = Atms.create () in
  let a = Atms.assumption t "a" and b = Atms.assumption t "b" in
  let n = Atms.node t "n" in
  Atms.justify t ~antecedents:[ a; b ] n;
  Atms.justify t ~antecedents:[ a ] n;
  match Atms.label t n with
  | [ { Atms.env; _ } ] ->
    Alcotest.check env_t "minimal env" (Atms.env_of_assumptions t [ a ]) env
  | l -> Alcotest.failf "expected one entry, got %d" (List.length l)

let test_atms_chaining () =
  let t = Atms.create () in
  let a = Atms.assumption t "a" and b = Atms.assumption t "b" in
  let n1 = Atms.node t "n1" and n2 = Atms.node t "n2" in
  Atms.justify t ~antecedents:[ a ] n1;
  Atms.justify t ~antecedents:[ n1; b ] n2;
  check_bool "n2 under {a,b}" true
    (Atms.is_in t n2 (Atms.env_of_assumptions t [ a; b ]))

let test_atms_premise () =
  let t = Atms.create () in
  let n = Atms.node t "premise" in
  Atms.premise t n;
  check_bool "holds in empty env" true (Atms.is_in t n Env.empty)

let test_atms_node_idempotent () =
  let t = Atms.create () in
  let n1 = Atms.node t "same" and n2 = Atms.node t "same" in
  check_bool "same datum, same node" true (n1 == n2)

let test_atms_contradiction_and_nogood () =
  let t = Atms.create () in
  let a = Atms.assumption t "a" and b = Atms.assumption t "b" in
  let n = Atms.node t "n" in
  Atms.justify t ~antecedents:[ a; b ] n;
  Atms.justify t ~antecedents:[ n ] (Atms.contradiction t);
  let envab = Atms.env_of_assumptions t [ a; b ] in
  check_bool "env now inconsistent" false (Atms.consistent t envab);
  check_bool "label swept" false (Atms.is_in t n envab);
  check_int "one nogood" 1 (List.length (Atms.nogoods t))

let test_atms_graded_justification () =
  let t = Atms.create () in
  let a = Atms.assumption t "a" in
  let n = Atms.node t "n" in
  Atms.justify t ~degree:0.7 ~antecedents:[ a ] n;
  check_float "degree propagated" 0.7
    (Atms.holds_in t n (Atms.env_of_assumptions t [ a ]))

let test_atms_degree_min_combination () =
  let t = Atms.create () in
  let a = Atms.assumption t "a" in
  let n1 = Atms.node t "n1" and n2 = Atms.node t "n2" in
  Atms.justify t ~degree:0.9 ~antecedents:[ a ] n1;
  Atms.justify t ~degree:0.6 ~antecedents:[ n1 ] n2;
  check_float "min of chain" 0.6
    (Atms.holds_in t n2 (Atms.env_of_assumptions t [ a ]))

let test_atms_soft_nogood_lowers_degree () =
  let t = Atms.create () in
  let a = Atms.assumption t "a" in
  let n = Atms.node t "n" in
  Atms.justify t ~antecedents:[ a ] n;
  Atms.justify t ~degree:0.4 ~antecedents:[ a ] (Atms.contradiction t);
  let enva = Atms.env_of_assumptions t [ a ] in
  check_bool "still consistent (soft)" true (Atms.consistent t enva);
  check_float "degree capped by 1 - inconsistency" 0.6 (Atms.holds_in t n enva)

let test_atms_disjunction () =
  let t = Atms.create () in
  let a = Atms.assumption t "a" in
  let d1 = Atms.node t "d1" and d2 = Atms.node t "d2" in
  Atms.justify_disjunction t ~antecedents:[ a ] [ d1; d2 ];
  let enva = Atms.env_of_assumptions t [ a ] in
  check_float "disjunct at degree/k" 0.5 (Atms.holds_in t d1 enva);
  check_float "disjunct at degree/k" 0.5 (Atms.holds_in t d2 enva);
  match Atms.justify_disjunction t ~antecedents:[ a ] [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty disjunction must be rejected"

let test_atms_incremental_label_update () =
  let t = Atms.create () in
  let a = Atms.assumption t "a" in
  let n1 = Atms.node t "n1" and n2 = Atms.node t "n2" in
  Atms.justify t ~antecedents:[ n1 ] n2;
  check_bool "n2 out initially" true (Atms.label t n2 = []);
  Atms.justify t ~antecedents:[ a ] n1;
  check_bool "n2 in after n1 supported" true
    (Atms.is_in t n2 (Atms.env_of_assumptions t [ a ]))

let test_atms_env_of_non_assumption () =
  let t = Atms.create () in
  let n = Atms.node t "n" in
  match Atms.env_of_assumptions t [ n ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-assumption must be rejected"

(* {1 Candidates} *)

let conflicts =
  (* the fig-5 situation: {r1,d1}@0.5, {r2,d1}@1.0 *)
  [
    { Candidates.env = e [ 0; 2 ]; degree = 0.5; reason = "Ir1" };
    { Candidates.env = e [ 1; 2 ]; degree = 1.0; reason = "Ir2" };
  ]

let test_suspicion () =
  check_float "r1 weak" 0.5 (Candidates.suspicion conflicts 0);
  check_float "r2 strong" 1.0 (Candidates.suspicion conflicts 1);
  check_float "d1 strong" 1.0 (Candidates.suspicion conflicts 2);
  check_float "absent" 0. (Candidates.suspicion conflicts 9)

let test_suspicions_ranked () =
  match Candidates.suspicions conflicts with
  | (first, d) :: _ ->
    check_bool "strongest first" true (d = 1.0 && (first = 1 || first = 2))
  | [] -> Alcotest.fail "no suspicions"

let test_diagnoses_ranking () =
  let ds = Candidates.diagnoses conflicts in
  check_int "two minimal diagnoses" 2 (List.length ds);
  match ds with
  | [ best; second ] ->
    (* {d1} has rank 1, {r1,r2} has rank min(0.5,1) = 0.5 *)
    Alcotest.check env_t "best is {d1}" (e [ 2 ]) best.Candidates.members;
    check_float "best rank" 1.0 best.Candidates.rank;
    Alcotest.check env_t "second is {r1,r2}" (e [ 0; 1 ])
      second.Candidates.members;
    check_float "second rank" 0.5 second.Candidates.rank
  | _ -> Alcotest.fail "expected exactly two diagnoses"

let test_diagnoses_threshold () =
  let ds = Candidates.diagnoses ~threshold:1. conflicts in
  check_int "two singletons" 2 (List.length ds);
  List.iter
    (fun (d : Candidates.diagnosis) ->
      check_int "singleton" 1 d.Candidates.cardinality)
    ds

let test_single_faults () =
  match Candidates.single_faults conflicts with
  | [ (a, d) ] ->
    check_int "common member is d1" 2 a;
    check_float "degree" 1.0 d
  | _ -> Alcotest.fail "expected d1 as the only single fault"

let test_single_faults_empty () =
  check_int "no conflicts, no single faults" 0
    (List.length (Candidates.single_faults []))

(* {1 Monotonicity properties (satellite of the session PR)}

   The session layer's correctness story leans on the ATMS being
   monotone in its inputs: growing the justification network only grows
   what is believed.  Seeded property family over [Gen.atms_spec]. *)

module Gen = Flames_check.Gen
module Rng = Flames_check.Rng

(* Replay a spec like [Gen.build_atms], but keep the handles so the test
   can keep justifying the same live instance afterwards. *)
let build_spec (spec : Gen.atms_spec) =
  let atms = Atms.create () in
  let assumptions =
    Array.init spec.Gen.n_assumptions (fun i ->
        Atms.assumption atms (Printf.sprintf "a%d" i))
  in
  let nodes =
    Array.init spec.Gen.n_nodes (fun i ->
        Atms.node atms (Printf.sprintf "n%d" i))
  in
  let resolve a =
    if a < spec.Gen.n_assumptions then assumptions.(a)
    else nodes.((a - spec.Gen.n_assumptions) mod spec.Gen.n_nodes)
  in
  List.iter
    (fun (c : Gen.clause) ->
      let antecedents = List.map resolve c.Gen.antecedents in
      let target =
        match c.Gen.target with
        | Some j -> nodes.(j mod spec.Gen.n_nodes)
        | None -> Atms.contradiction atms
      in
      Atms.justify atms ~degree:c.Gen.degree ~antecedents target)
    spec.Gen.clauses;
  List.iter
    (fun j -> Atms.premise atms nodes.(j mod spec.Gen.n_nodes))
    spec.Gen.premises;
  (atms, assumptions, nodes)

let snapshot_labels atms nodes =
  Array.to_list nodes
  |> List.concat_map (fun n ->
         List.map (fun (l : Atms.labelled) -> (n, l.env, l.degree))
           (Atms.label atms n))

(* One random extra clause respecting the DAG discipline of the spec. *)
let extra_clause rng (spec : Gen.atms_spec) ~contradiction =
  let target = if contradiction then None else Some (Rng.int rng spec.Gen.n_nodes) in
  let horizon =
    match target with
    | Some j -> spec.Gen.n_assumptions + j
    | None -> spec.Gen.n_assumptions + spec.Gen.n_nodes
  in
  let antecedents =
    List.init
      (1 + Rng.int rng 3)
      (fun _ -> Rng.int rng (Int.max 1 horizon))
    |> List.sort_uniq Int.compare
  in
  {
    Gen.antecedents;
    target;
    degree = 0.25 +. (Float.of_int (Rng.int rng 76) /. 100.);
  }

(* Adding a justification to a contradiction-free network never shrinks
   belief: every (node, env, degree) of the old state still holds with at
   least its old degree afterwards, and no nogood appears. *)
let test_atms_monotone_justify () =
  for case = 0 to 79 do
    let rng = Rng.make (Rng.case_seed ~seed:0xA7B51 ~case) in
    let spec = Gen.atms_spec.Gen.gen rng in
    let spec =
      {
        spec with
        Gen.clauses =
          List.filter (fun (c : Gen.clause) -> c.Gen.target <> None)
            spec.Gen.clauses;
      }
    in
    let atms, assumptions, nodes = build_spec spec in
    let before = snapshot_labels atms nodes in
    let c = extra_clause rng spec ~contradiction:false in
    let resolve a =
      if a < spec.Gen.n_assumptions then assumptions.(a)
      else nodes.((a - spec.Gen.n_assumptions) mod spec.Gen.n_nodes)
    in
    let target =
      match c.Gen.target with
      | Some j -> nodes.(j mod spec.Gen.n_nodes)
      | None -> assert false
    in
    Atms.justify atms ~degree:c.Gen.degree
      ~antecedents:(List.map resolve c.Gen.antecedents)
      target;
    List.iter
      (fun (n, env, d) ->
        let now = Atms.holds_in atms n env in
        if now < d -. 1e-12 then
          Alcotest.failf
            "case %d: %s lost belief in %s (%.3f -> %.3f) after a new \
             justification"
            case (Atms.datum n)
            (Format.asprintf "%a" (Env.pp ~names:(Printf.sprintf "a%d")) env)
            d now)
      before;
    check_int
      (Printf.sprintf "case %d: still no nogoods" case)
      0
      (List.length (Atms.nogoods atms));
    (match Atms.audit atms with
    | [] -> ()
    | vs -> Alcotest.failf "case %d: audit: %s" case (String.concat "; " vs))
  done

(* Adding an assumption alone is inert: every existing label entry and
   nogood is untouched, and the newcomer believes only itself. *)
let test_atms_monotone_assumption () =
  for case = 0 to 79 do
    let rng = Rng.make (Rng.case_seed ~seed:0xA7B52 ~case) in
    let spec = Gen.atms_spec.Gen.gen rng in
    let atms, _assumptions, nodes = build_spec spec in
    let labels_before = snapshot_labels atms nodes in
    let nogoods_before = Atms.nogoods atms in
    let extra = Atms.assumption atms "extra" in
    let labels_after = snapshot_labels atms nodes in
    check_bool
      (Printf.sprintf "case %d: labels untouched" case)
      true
      (List.length labels_before = List.length labels_after
      && List.for_all2
           (fun (n, e1, d1) (n', e2, d2) ->
             n == n' && Env.equal e1 e2 && d1 = d2)
           labels_before labels_after);
    check_bool
      (Printf.sprintf "case %d: nogoods untouched" case)
      true
      (List.length nogoods_before = List.length (Atms.nogoods atms)
      && List.for_all2
           (fun (a : Nogood.entry) (b : Nogood.entry) ->
             Env.equal a.Nogood.env b.Nogood.env
             && a.Nogood.degree = b.Nogood.degree)
           nogoods_before (Atms.nogoods atms));
    (match Atms.label atms extra with
    | [ l ] ->
      check_bool
        (Printf.sprintf "case %d: self-belief" case)
        true
        (l.Atms.degree = 1. && Env.cardinal l.Atms.env = 1)
    | _ -> Alcotest.failf "case %d: fresh assumption label not a singleton" case)
  done

(* Any clause addition — contradiction clauses included — only raises the
   recorded inconsistency of any environment, never lowers it. *)
let test_nogood_monotone () =
  for case = 0 to 79 do
    let rng = Rng.make (Rng.case_seed ~seed:0xA7B53 ~case) in
    let spec = Gen.atms_spec.Gen.gen rng in
    let atms, assumptions, nodes = build_spec spec in
    let before = Nogood.entries (Atms.nogood_db atms) in
    let c = extra_clause rng spec ~contradiction:(Rng.bool rng) in
    let resolve a =
      if a < spec.Gen.n_assumptions then assumptions.(a)
      else nodes.((a - spec.Gen.n_assumptions) mod spec.Gen.n_nodes)
    in
    let target =
      match c.Gen.target with
      | Some j -> nodes.(j mod spec.Gen.n_nodes)
      | None -> Atms.contradiction atms
    in
    Atms.justify atms ~degree:c.Gen.degree
      ~antecedents:(List.map resolve c.Gen.antecedents)
      target;
    let db = Atms.nogood_db atms in
    List.iter
      (fun (e : Nogood.entry) ->
        let now = Nogood.inconsistency db e.Nogood.env in
        if now < e.Nogood.degree -. 1e-12 then
          Alcotest.failf
            "case %d: inconsistency of %s dropped %.3f -> %.3f"
            case
            (Format.asprintf "%a"
               (Env.pp ~names:(Printf.sprintf "a%d"))
               e.Nogood.env)
            e.Nogood.degree now)
      before
  done

(* Replay determinism — the round-trip the session's rebuild path relies
   on: building the same spec twice yields bit-identical labels (same
   order, same interned environments, same degrees) and the same
   canonical nogood view. *)
let test_atms_rebuild_roundtrip () =
  for case = 0 to 79 do
    let rng = Rng.make (Rng.case_seed ~seed:0xA7B54 ~case) in
    let spec = Gen.atms_spec.Gen.gen rng in
    let atms1, _, nodes1 = build_spec spec in
    let atms2, _, nodes2 = build_spec spec in
    let fingerprint atms nodes =
      Format.asprintf "%a"
        (fun ppf () ->
          Array.iter
            (fun n ->
              List.iter
                (fun (l : Atms.labelled) ->
                  Format.fprintf ppf "%s %a %h@." (Atms.datum n)
                    (Env.pp ~names:(Printf.sprintf "a%d"))
                    l.Atms.env l.Atms.degree)
                (Atms.label atms n))
            nodes;
          List.iter
            (fun (e : Nogood.entry) ->
              Format.fprintf ppf "nogood %a %h@."
                (Env.pp ~names:(Printf.sprintf "a%d"))
                e.Nogood.env e.Nogood.degree)
            (Atms.nogoods atms))
        ()
    in
    Alcotest.(check string)
      (Printf.sprintf "case %d: rebuild fingerprint" case)
      (fingerprint atms1 nodes1) (fingerprint atms2 nodes2)
  done

let () =
  Alcotest.run "atms"
    [
      ( "env",
        [
          Alcotest.test_case "basics" `Quick test_env_basics;
          Alcotest.test_case "dedup" `Quick test_env_dedup;
          Alcotest.test_case "word boundaries" `Quick
            test_env_word_boundaries;
          Alcotest.test_case "interning" `Quick test_env_interning;
        ] );
      ( "envindex",
        [
          Alcotest.test_case "dominance" `Quick test_envindex_dominance;
          Alcotest.test_case "filter and clear" `Quick
            test_envindex_filter_clear;
        ] );
      ( "nogood",
        [
          Alcotest.test_case "record and query" `Quick
            test_nogood_record_and_query;
          Alcotest.test_case "subsumption" `Quick test_nogood_subsumption;
          Alcotest.test_case "zero degree" `Quick
            test_nogood_degree_zero_ignored;
          Alcotest.test_case "same env max" `Quick
            test_nogood_same_env_keeps_max;
          Alcotest.test_case "empty env" `Quick test_nogood_empty_env;
          Alcotest.test_case "entries sorted" `Quick
            test_nogood_entries_sorted;
        ] );
      ( "hitting",
        [
          Alcotest.test_case "empty family" `Quick test_hitting_empty_family;
          Alcotest.test_case "empty conflict" `Quick
            test_hitting_empty_conflict;
          Alcotest.test_case "paper fig5" `Quick test_hitting_paper_fig5;
          Alcotest.test_case "minimality" `Quick test_hitting_minimality;
          Alcotest.test_case "forced singleton" `Quick
            test_hitting_single_common;
          Alcotest.test_case "limit" `Quick test_hitting_limit;
          Alcotest.test_case "duplicates" `Quick
            test_hitting_duplicate_conflicts;
          Alcotest.test_case "presort prunes" `Quick
            test_hitting_presort_prunes;
        ] );
      ( "hitting-properties",
        List.map (QCheck_alcotest.to_alcotest ~long:false) hitting_properties
      );
      ( "atms",
        [
          Alcotest.test_case "assumption label" `Quick
            test_atms_assumption_label;
          Alcotest.test_case "duplicate assumption" `Quick
            test_atms_duplicate_assumption;
          Alcotest.test_case "justification propagates" `Quick
            test_atms_justification_propagates;
          Alcotest.test_case "label minimality" `Quick
            test_atms_label_minimality;
          Alcotest.test_case "chaining" `Quick test_atms_chaining;
          Alcotest.test_case "premise" `Quick test_atms_premise;
          Alcotest.test_case "node idempotent" `Quick
            test_atms_node_idempotent;
          Alcotest.test_case "contradiction and nogood" `Quick
            test_atms_contradiction_and_nogood;
          Alcotest.test_case "graded justification" `Quick
            test_atms_graded_justification;
          Alcotest.test_case "degree min combination" `Quick
            test_atms_degree_min_combination;
          Alcotest.test_case "soft nogood" `Quick
            test_atms_soft_nogood_lowers_degree;
          Alcotest.test_case "disjunction" `Quick test_atms_disjunction;
          Alcotest.test_case "incremental update" `Quick
            test_atms_incremental_label_update;
          Alcotest.test_case "env of non-assumption" `Quick
            test_atms_env_of_non_assumption;
        ] );
      ( "monotonicity",
        [
          Alcotest.test_case "justify grows belief" `Quick
            test_atms_monotone_justify;
          Alcotest.test_case "assumption is inert" `Quick
            test_atms_monotone_assumption;
          Alcotest.test_case "nogoods only rise" `Quick test_nogood_monotone;
          Alcotest.test_case "rebuild round-trip" `Quick
            test_atms_rebuild_roundtrip;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "suspicion" `Quick test_suspicion;
          Alcotest.test_case "suspicions ranked" `Quick
            test_suspicions_ranked;
          Alcotest.test_case "diagnoses ranking" `Quick
            test_diagnoses_ranking;
          Alcotest.test_case "diagnoses threshold" `Quick
            test_diagnoses_threshold;
          Alcotest.test_case "single faults" `Quick test_single_faults;
          Alcotest.test_case "single faults empty" `Quick
            test_single_faults_empty;
        ] );
    ]
