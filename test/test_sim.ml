(* Tests for the DC simulator substrate: linear algebra, MNA solving,
   piecewise-linear device regions, measurements and sensitivities. *)

module I = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module C = Flames_circuit.Component
module N = Flames_circuit.Netlist
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Linalg = Flames_sim.Linalg
module Mna = Flames_sim.Mna
module Measure = Flames_sim.Measure
module Sensitivity = Flames_sim.Sensitivity

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))
let check_close msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* {1 Linalg} *)

let test_solve_identity () =
  let a = [| [| 1.; 0. |]; [| 0.; 1. |] |] and b = [| 3.; 4. |] in
  let x = Linalg.solve a b in
  check_float "x0" 3. x.(0);
  check_float "x1" 4. x.(1)

let test_solve_2x2 () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] and b = [| 5.; 10. |] in
  let x = Linalg.solve a b in
  check_float "x0" 1. x.(0);
  check_float "x1" 3. x.(1);
  check_bool "residual tiny" true (Linalg.residual_norm a x b < 1e-9)

let test_solve_needs_pivoting () =
  (* zero on the diagonal: partial pivoting required *)
  let a = [| [| 0.; 1. |]; [| 1.; 0. |] |] and b = [| 2.; 7. |] in
  let x = Linalg.solve a b in
  check_float "x0" 7. x.(0);
  check_float "x1" 2. x.(1)

let test_solve_singular () =
  let a = [| [| 1.; 1. |]; [| 2.; 2. |] |] and b = [| 1.; 2. |] in
  match Linalg.solve a b with
  | exception Linalg.Singular -> ()
  | _ -> Alcotest.fail "singular matrix must raise"

let test_solve_dimension_mismatch () =
  match Linalg.solve [| [| 1. |] |] [| 1.; 2. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dimension mismatch must raise"

let test_solve_random_roundtrip () =
  (* A·x = b with known x: deterministic pseudo-random instance *)
  let n = 8 in
  let seed = ref 42 in
  let rand () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    (float_of_int !seed /. float_of_int 0x3FFFFFFF) -. 0.5
  in
  let a = Array.init n (fun _ -> Array.init n (fun _ -> rand ())) in
  (* diagonal dominance guarantees solvability *)
  for i = 0 to n - 1 do
    a.(i).(i) <- a.(i).(i) +. 10.
  done;
  let x_true = Array.init n (fun i -> float_of_int (i + 1)) in
  let b =
    Array.init n (fun i ->
        let s = ref 0. in
        for j = 0 to n - 1 do
          s := !s +. (a.(i).(j) *. x_true.(j))
        done;
        !s)
  in
  let x = Linalg.solve a b in
  Array.iteri (fun i xi -> check_close "roundtrip" 1e-9 x_true.(i) xi) x

(* {1 Lu: reusable factors for right-hand-side sweeps} *)

module Lu = Flames_sim.Lu

let bits_equal x y =
  Array.length x = Array.length y
  && Array.for_all2
       (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
       x y

(* the contract the fault sweep rests on: [resolve (factor a) b] is
   bit-identical to [Linalg.solve_opt a b] — including the row-swap
   sequence, the relative pivot threshold and the zero-multiplier skip —
   over random dense and sparse-ish systems of varying conditioning *)
let test_lu_resolve_bit_identity () =
  let seed = ref 42 in
  let rand () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !seed /. float_of_int 0x3FFFFFFF
  in
  let total = ref 0 in
  for n = 1 to 10 do
    for _trial = 1 to 100 do
      let a =
        Array.init n (fun _ ->
            Array.init n (fun _ ->
                (* wide magnitude spread, ~1/5 exact zeros: exercises
                   pivoting and the f <> 0 multiplier skip *)
                if rand () < 0.2 then 0.
                else (rand () -. 0.5) *. (10. ** ((rand () *. 6.) -. 3.))))
      in
      let b = Array.init n (fun _ -> (rand () -. 0.5) *. 10.) in
      match (Linalg.solve_opt a b, Lu.factor a) with
      | Error `Singular, Error `Singular -> ()
      | Error `Singular, Ok _ -> Alcotest.fail "factor missed a singularity"
      | Ok _, Error `Singular -> Alcotest.fail "factor spuriously singular"
      | Ok x, Ok f ->
        incr total;
        if not (bits_equal x (Lu.resolve f b)) then
          Alcotest.failf "resolve not bit-identical at n=%d" n
    done
  done;
  check_bool "exercised nonsingular systems" true (!total > 500)

let test_lu_resolve_many_rhs () =
  (* one factorisation, many right-hand sides — the sweep shape *)
  let a = [| [| 0.; 1.; 2. |]; [| 3.; 1.; 0. |]; [| 1.; 0.; 1. |] |] in
  let f =
    match Lu.factor a with
    | Ok f -> f
    | Error `Singular -> Alcotest.fail "unexpected singular"
  in
  List.iter
    (fun b ->
      match Linalg.solve_opt a b with
      | Ok x -> check_bool "rhs bit-identical" true (bits_equal x (Lu.resolve f b))
      | Error `Singular -> Alcotest.fail "unexpected singular")
    [ [| 1.; 2.; 3. |]; [| 0.; 0.; 1. |]; [| -5.; 7.; 0.25 |] ]

let test_lu_rank1_refresh () =
  let a = [| [| 4.; 1.; 0. |]; [| 1.; 5.; 2. |]; [| 0.; 2.; 6. |] |] in
  let f =
    match Lu.factor a with
    | Ok f -> f
    | Error `Singular -> Alcotest.fail "unexpected singular"
  in
  (* perturb one row: A' = A + u·vᵀ with u = e1, v = (0, 0.5, 0.25) *)
  let u = [| 1.; 0.; 0. |] and v = [| 0.; 0.5; 0.25 |] in
  let a' = Array.map Array.copy a in
  a'.(0).(1) <- a'.(0).(1) +. 0.5;
  a'.(0).(2) <- a'.(0).(2) +. 0.25;
  let b = [| 1.; 2.; 3. |] in
  (match Lu.rank1_refresh f ~u ~v ~a' b with
  | None -> Alcotest.fail "well-conditioned rank-1 update declined"
  | Some x ->
    check_bool "residual verified" true (Linalg.residual_norm a' x b <= 1e-8));
  (* degenerate denominator (1 + vᵀA⁻¹u = 0): must decline, not return
     a wrong answer.  A = I, u = e1, v = -e1 makes A' singular. *)
  let id = [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let fid =
    match Lu.factor id with Ok f -> f | Error `Singular -> assert false
  in
  let u = [| 1.; 0. |] and v = [| -1.; 0. |] in
  let a' = [| [| 0.; 0. |]; [| 0.; 1. |] |] in
  (match Lu.rank1_refresh fid ~u ~v ~a' [| 1.; 1. |] with
  | None -> ()
  | Some _ -> Alcotest.fail "singular rank-1 update accepted")

(* the sweep context must be transparent: repeated solves of the same
   circuit through one sweep return bit-identical solutions to the
   sweep-free path (exact factor reuse, no rank-1 involved) *)
let test_mna_sweep_transparent () =
  let net = L.three_stage_amplifier () in
  let plain = Mna.solve net in
  let sweep = Mna.sweep () in
  let first = Mna.solve ~sweep net in
  let again = Mna.solve ~sweep net (* the factor-reuse hit *) in
  let same (a : Mna.solution) (b : Mna.solution) =
    List.for_all2
      (fun (n1, v1) (n2, v2) ->
        String.equal n1 n2
        && Int64.equal (Int64.bits_of_float v1) (Int64.bits_of_float v2))
      a.Mna.voltages b.Mna.voltages
    && a.Mna.regions = b.Mna.regions
  in
  check_bool "sweep first solve bit-identical" true (same plain first);
  check_bool "sweep reuse bit-identical" true (same plain again)

(* {1 MNA basics} *)

let test_divider () =
  let sol = Mna.solve (L.voltage_divider ()) in
  check_close "mid = vin/2" 1e-6 5. (Mna.voltage sol "mid");
  check_close "in = vin" 1e-6 10. (Mna.voltage sol "in");
  check_float "gnd" 0. (Mna.voltage sol "gnd");
  check_close "current" 1e-9 5e-4 (Mna.current sol "r1")

let test_divider_kcl () =
  let sol = Mna.solve (L.voltage_divider ()) in
  check_close "series currents equal" 1e-12 (Mna.current sol "r1")
    (Mna.current sol "r2")

let test_gain_chain () =
  let sol = Mna.solve (L.amplifier_chain ()) in
  check_close "A" 1e-9 3. (Mna.voltage sol "A");
  check_close "B" 1e-9 3. (Mna.voltage sol "B");
  check_close "C" 1e-9 6. (Mna.voltage sol "C");
  check_close "D" 1e-9 18. (Mna.voltage sol "D")

let test_diode_conducting () =
  let sol = Mna.solve (L.diode_resistor ~powered:true ()) in
  (* (2.25 − 0.2) / 20 kΩ = 102.5 µA *)
  check_close "diode current" 1e-9 102.5e-6 (Mna.current sol "d1");
  check_close "n1" 1e-6 1.225 (Mna.voltage sol "n1");
  check_close "n2" 1e-6 1.025 (Mna.voltage sol "n2")

let test_diode_blocked () =
  (* reverse the source: the diode must block and carry no current *)
  let net =
    N.make ~name:"reverse" ~ground:"gnd"
      [
        C.vsource "vin" ~volts:(I.crisp (-2.)) ~p:"in" ~n:"gnd";
        C.resistor "r1" ~ohms:(I.crisp 10e3) ~p:"in" ~n:"n1";
        C.diode "d1" ~forward_drop:(I.crisp 0.2)
          ~max_current:(I.crisp 1e-4) ~p:"n1" ~n:"n2";
        C.resistor "r2" ~ohms:(I.crisp 10e3) ~p:"n2" ~n:"gnd";
      ]
  in
  let sol = Mna.solve net in
  check_float "no current" 0. (Mna.current sol "d1");
  check_close "n2 floats to ground through r2" 1e-6 0. (Mna.voltage sol "n2")

(* {1 MNA on the three-stage amplifier} *)

let amp () = L.three_stage_amplifier ()

let test_amplifier_bias () =
  let sol = Mna.solve (amp ()) in
  (* reconstruction of fig. 6: all transistors active, V1 between the
     rails, followers 0.7 below their bases *)
  List.iter
    (fun t -> check_bool (t ^ " active") true (Mna.region sol t = Mna.Active))
    [ "t1"; "t2"; "t3" ];
  let v1 = Mna.voltage sol "v1" in
  check_bool "v1 in linear region" true (v1 > 2. && v1 < 17.);
  check_close "follower drop t2" 1e-6 0.7
    (v1 -. Mna.voltage sol "n2");
  check_close "follower drop t3" 1e-6 0.7
    (Mna.voltage sol "n2" -. Mna.voltage sol "vs")

let test_amplifier_beta_relation () =
  let sol = Mna.solve (amp ()) in
  check_close "Ic1 = beta1 Ib1" 1e-12
    (300. *. Mna.current sol "t1.b")
    (Mna.current sol "t1.c")

let test_amplifier_kcl_at_v1 () =
  let sol = Mna.solve (amp ()) in
  (* I(r2) into v1 = Ic1 + Ib2 *)
  let ir2 = Mna.current sol "r2" in
  let ic1 = Mna.current sol "t1.c" and ib2 = Mna.current sol "t2.b" in
  check_close "KCL at v1" 1e-9 ir2 (ic1 +. ib2)

let test_cutoff_region () =
  (* grounding the divider cuts T1 off *)
  let net = F.inject (amp ()) (F.short "r3" ~parameter:"R") in
  let sol = Mna.solve net in
  check_bool "t1 cutoff" true (Mna.region sol "t1" = Mna.Cutoff);
  check_float "no base current" 0. (Mna.current sol "t1.b");
  (* collector pulled towards the rail (minus the t2 base-current drop) *)
  check_bool "v1 near vcc" true (Mna.voltage sol "v1" > 17.)

let test_saturation_region () =
  (* shorting r1 slams the base to the rail: T1 must saturate, with its
     collector-emitter voltage clamped near Vce,sat, not driven negative *)
  let net = F.inject (amp ()) (F.short "r1" ~parameter:"R") in
  let sol = Mna.solve net in
  check_bool "t1 saturated" true (Mna.region sol "t1" = Mna.Saturated);
  let vce = Mna.voltage sol "v1" -. Mna.voltage sol "e1" in
  check_close "vce clamped" 0.05 0.2 vce

let test_open_node_simulation () =
  let net = F.open_node (amp ()) "n1" in
  let sol = Mna.solve net in
  (* base starves → t1 cut off → collector near the rail *)
  check_bool "v1 rises" true (Mna.voltage sol "v1" > 16.)

(* {1 Measure} *)

let test_fuzzify () =
  let inst = { Measure.relative = 0.01; floor = 1e-3 } in
  let v = Measure.fuzzify inst 10. in
  check_float "centred" 10. (I.centroid v);
  check_float "spread 1%" 0.1 v.I.alpha;
  let tiny = Measure.fuzzify inst 0.001 in
  check_float "floor applies" 1e-3 tiny.I.alpha;
  let exact = Measure.fuzzify Measure.exact_instrument 5. in
  check_bool "exact is crisp" true (I.is_point exact)

let test_probe () =
  let sol = Mna.solve (L.voltage_divider ()) in
  (match Measure.probe sol (Q.voltage "mid") with
  | Some v -> check_close "probed mid" 0.1 5. (I.centroid v)
  | None -> Alcotest.fail "node probe failed");
  (match Measure.probe sol (Q.current "r1") with
  | Some v -> check_close "probed current" 1e-6 5e-4 (I.centroid v)
  | None -> Alcotest.fail "current probe failed");
  check_bool "parameter not measurable" true
    (Measure.probe sol (Q.parameter "r1" "R") = None);
  check_bool "unknown node" true (Measure.probe sol (Q.voltage "zz") = None)

let test_probe_all () =
  let sol = Mna.solve (L.voltage_divider ()) in
  let got =
    Measure.probe_all sol [ Q.voltage "mid"; Q.parameter "r1" "R" ]
  in
  Alcotest.(check int) "only measurable" 1 (List.length got)

(* {1 Sensitivity} *)

let test_sensitivity_divider () =
  let reports = Sensitivity.analyze (L.voltage_divider ()) in
  let mid =
    List.find (fun (r : Sensitivity.node_report) -> r.Sensitivity.node = "mid") reports
  in
  check_close "nominal" 1e-6 5. mid.Sensitivity.nominal;
  (* both resistors and the source influence the divider output *)
  let supporters = Sensitivity.supporters mid in
  List.iter
    (fun c -> check_bool (c ^ " supports mid") true (List.mem c supporters))
    [ "r1"; "r2"; "vin" ];
  check_bool "spread positive" true (mid.Sensitivity.total_spread > 0.)

let test_sensitivity_locality () =
  let reports = Sensitivity.analyze (amp ()) in
  let v1 =
    List.find (fun (r : Sensitivity.node_report) -> r.Sensitivity.node = "v1") reports
  in
  let supporters = Sensitivity.supporters v1 in
  (* stage-1 components matter to V1; downstream faults can also reach
     it through base-current loading, so influence is judged at the
     node where stages decouple: nothing downstream moves E1 *)
  check_bool "r2 supports v1" true (List.mem "r2" supporters);
  check_bool "r1 supports v1" true (List.mem "r1" supporters);
  let e1 =
    List.find (fun (r : Sensitivity.node_report) -> r.Sensitivity.node = "e1")
      (Sensitivity.analyze (amp ()))
  in
  check_bool "r6 does not support e1" false
    (List.mem "r6" (Sensitivity.supporters e1))

let test_sensitivity_downstream () =
  let reports = Sensitivity.analyze (amp ()) in
  let vs =
    List.find (fun (r : Sensitivity.node_report) -> r.Sensitivity.node = "vs") reports
  in
  let supporters = Sensitivity.supporters vs in
  (* the output sees the whole signal path *)
  List.iter
    (fun c -> check_bool (c ^ " supports vs") true (List.mem c supporters))
    [ "r1"; "r2"; "r3"; "t1" ]

let () =
  Alcotest.run "sim"
    [
      ( "linalg",
        [
          Alcotest.test_case "identity" `Quick test_solve_identity;
          Alcotest.test_case "2x2" `Quick test_solve_2x2;
          Alcotest.test_case "pivoting" `Quick test_solve_needs_pivoting;
          Alcotest.test_case "singular" `Quick test_solve_singular;
          Alcotest.test_case "dimensions" `Quick
            test_solve_dimension_mismatch;
          Alcotest.test_case "roundtrip" `Quick test_solve_random_roundtrip;
        ] );
      ( "lu",
        [
          Alcotest.test_case "resolve bit-identity" `Quick
            test_lu_resolve_bit_identity;
          Alcotest.test_case "many right-hand sides" `Quick
            test_lu_resolve_many_rhs;
          Alcotest.test_case "rank-1 refresh" `Quick test_lu_rank1_refresh;
          Alcotest.test_case "sweep transparent" `Quick
            test_mna_sweep_transparent;
        ] );
      ( "mna",
        [
          Alcotest.test_case "divider" `Quick test_divider;
          Alcotest.test_case "divider KCL" `Quick test_divider_kcl;
          Alcotest.test_case "gain chain" `Quick test_gain_chain;
          Alcotest.test_case "diode conducting" `Quick test_diode_conducting;
          Alcotest.test_case "diode blocked" `Quick test_diode_blocked;
        ] );
      ( "amplifier",
        [
          Alcotest.test_case "bias point" `Quick test_amplifier_bias;
          Alcotest.test_case "beta relation" `Quick
            test_amplifier_beta_relation;
          Alcotest.test_case "KCL at v1" `Quick test_amplifier_kcl_at_v1;
          Alcotest.test_case "cutoff" `Quick test_cutoff_region;
          Alcotest.test_case "saturation" `Quick test_saturation_region;
          Alcotest.test_case "open node" `Quick test_open_node_simulation;
        ] );
      ( "measure",
        [
          Alcotest.test_case "fuzzify" `Quick test_fuzzify;
          Alcotest.test_case "probe" `Quick test_probe;
          Alcotest.test_case "probe_all" `Quick test_probe_all;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "divider" `Quick test_sensitivity_divider;
          Alcotest.test_case "locality" `Quick test_sensitivity_locality;
          Alcotest.test_case "downstream" `Quick test_sensitivity_downstream;
        ] );
    ]
