(* Tests for the batch-diagnosis engine: the domain worker pool, the
   model-compilation cache, and the determinism guarantee of the batch
   runner against the sequential [Diagnose.run] path. *)

module I = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Pool = Flames_engine.Pool
module Cache = Flames_engine.Cache
module Batch = Flames_engine.Batch
module Breaker = Flames_engine.Breaker
module Stats = Flames_engine.Stats
module Model = Flames_core.Model

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* {1 Pool} *)

let test_pool_submit_await () =
  Pool.with_pool ~workers:2 (fun pool ->
      let p = Pool.submit pool (fun () -> 6 * 7) in
      match Pool.await p with
      | Ok v -> check_int "result" 42 v
      | Error _ -> Alcotest.fail "job failed")

let test_pool_order_preserved () =
  Pool.with_pool ~workers:4 (fun pool ->
      let promises =
        List.init 32 (fun i -> Pool.submit pool (fun () -> i * i))
      in
      let results = List.map Pool.await promises in
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> check_int "square" (i * i) v
          | Error _ -> Alcotest.fail "job failed")
        results)

exception Boom

let test_pool_exception () =
  Pool.with_pool ~workers:1 (fun pool ->
      let p = Pool.submit pool (fun () -> raise Boom) in
      (match Pool.await p with
      | Error (Pool.Failed Boom) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Failed Boom");
      (* the worker survives a raising job *)
      match Pool.await (Pool.submit pool (fun () -> 1)) with
      | Ok v -> check_int "worker alive" 1 v
      | Error _ -> Alcotest.fail "worker died")

let test_pool_cancel_queued () =
  Pool.with_pool ~workers:1 (fun pool ->
      (* occupy the single worker, then cancel a queued job *)
      let blocker = Pool.submit pool (fun () -> Unix.sleepf 0.2) in
      let victim = Pool.submit pool (fun () -> 99) in
      Unix.sleepf 0.02 (* let the worker pick up the blocker *);
      check_bool "cancelled" true (Pool.cancel victim);
      (match Pool.await victim with
      | Error Pool.Cancelled -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Cancelled");
      check_bool "blocker unaffected" true (Pool.await blocker = Ok ()))

let test_pool_cancel_finished () =
  Pool.with_pool ~workers:1 (fun pool ->
      let p = Pool.submit pool (fun () -> 5) in
      ignore (Pool.await p);
      check_bool "cannot cancel finished" false (Pool.cancel p);
      check_bool "result kept" true (Pool.await p = Ok 5))

let test_pool_timeout_running () =
  Pool.with_pool ~workers:1 (fun pool ->
      let p = Pool.submit pool ~timeout:0.05 (fun () -> Unix.sleepf 0.5; 1) in
      let t0 = Unix.gettimeofday () in
      (match Pool.await p with
      | Error Pool.Timed_out -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Timed_out");
      let waited = Unix.gettimeofday () -. t0 in
      check_bool "await returned at the deadline, not at job end" true
        (waited < 0.4))

let test_pool_timeout_queued () =
  Pool.with_pool ~workers:1 (fun pool ->
      let _blocker = Pool.submit pool (fun () -> Unix.sleepf 0.2) in
      let p = Pool.submit pool ~timeout:0.03 (fun () -> 1) in
      match Pool.await p with
      | Error Pool.Cancelled -> ()
      | Ok _ | Error (Pool.Timed_out | Pool.Failed _ | Pool.Crashed _) ->
        Alcotest.fail "expected Cancelled (deadline passed while queued)")

let test_pool_shutdown_drains () =
  let pool = Pool.create ~workers:2 () in
  let promises = List.init 8 (fun i -> Pool.submit pool (fun () -> i)) in
  Pool.shutdown pool;
  (* graceful: every queued job ran before the workers exited *)
  List.iteri
    (fun i p -> check_bool "ran" true (Pool.await p = Ok i))
    promises;
  (match Pool.submit pool (fun () -> 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "submit after shutdown must raise");
  Pool.shutdown pool (* idempotent *)

(* {1 Pool supervision} *)

let test_pool_kill_crashed () =
  Pool.with_pool ~workers:2 ~crash_retries:0 (fun pool ->
      let p = Pool.submit pool (fun () -> raise Pool.Kill_worker) in
      (match Pool.await p with
      | Error (Pool.Crashed { attempts = 1 }) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Crashed with 0 retries");
      (* the dead worker was replaced: the pool still serves jobs *)
      match Pool.await (Pool.submit pool (fun () -> 7)) with
      | Ok v -> check_int "respawned worker answers" 7 v
      | Error _ -> Alcotest.fail "pool dead after a worker kill")

let test_pool_kill_requeued () =
  Pool.with_pool ~workers:1 ~crash_retries:2 (fun pool ->
      let runs = Atomic.make 0 in
      let p =
        Pool.submit pool (fun () ->
            if Atomic.fetch_and_add runs 1 = 0 then raise Pool.Kill_worker;
            42)
      in
      (match Pool.await p with
      | Ok v -> check_int "requeued run succeeded" 42 v
      | Error _ -> Alcotest.fail "expected success on the second attempt");
      check_int "ran twice" 2 (Atomic.get runs))

(* queue_depth/in_flight are updated a hair after the promise resolves
   (the worker decrements once the job body returns), so consistency is
   asserted by polling, not by a single read after await. *)
let wait_for message pred =
  let deadline = Unix.gettimeofday () +. 5. in
  let rec poll () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" message
    else begin
      Unix.sleepf 0.002;
      poll ()
    end
  in
  poll ()

let test_pool_introspection () =
  Pool.with_pool ~workers:1 (fun pool ->
      check_int "idle queue_depth" 0 (Pool.queue_depth pool);
      check_int "idle in_flight" 0 (Pool.in_flight pool);
      let gate = Atomic.make false in
      let blocker =
        Pool.submit pool (fun () ->
            while not (Atomic.get gate) do
              Unix.sleepf 0.002
            done)
      in
      wait_for "the blocker to start" (fun () -> Pool.in_flight pool = 1);
      let queued = List.init 3 (fun i -> Pool.submit pool (fun () -> i)) in
      check_int "queued behind the blocker" 3 (Pool.queue_depth pool);
      check_int "one running" 1 (Pool.in_flight pool);
      Atomic.set gate true;
      (match Pool.await blocker with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "blocker failed");
      List.iteri
        (fun i p ->
          match Pool.await p with
          | Ok v -> check_int "queued job result" i v
          | Error _ -> Alcotest.fail "queued job failed")
        queued;
      wait_for "everything drained" (fun () ->
          Pool.queue_depth pool = 0 && Pool.in_flight pool = 0))

let test_pool_introspection_crash () =
  Pool.with_pool ~workers:1 ~crash_retries:0 (fun pool ->
      let p = Pool.submit pool (fun () -> raise Pool.Kill_worker) in
      (match Pool.await p with
      | Error (Pool.Crashed _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Crashed");
      (* the supervision wrapper un-counts the dead worker's job *)
      wait_for "in_flight back to 0 after the crash" (fun () ->
          Pool.queue_depth pool = 0 && Pool.in_flight pool = 0);
      match Pool.await (Pool.submit pool (fun () -> 7)) with
      | Ok v ->
        check_int "respawned worker answers" 7 v;
        wait_for "counters settle on the respawned worker" (fun () ->
            Pool.queue_depth pool = 0 && Pool.in_flight pool = 0)
      | Error _ -> Alcotest.fail "pool dead after the crash")

let test_pool_shutdown_now_cancels () =
  let pool = Pool.create ~workers:1 () in
  let blocker = Pool.submit pool (fun () -> Unix.sleepf 0.2; 1) in
  Unix.sleepf 0.02 (* let the worker pick up the blocker *);
  let queued = List.init 4 (fun i -> Pool.submit pool (fun () -> i)) in
  Pool.shutdown_now pool;
  (* the running job completes (cancellation is cooperative), but the
     jobs still queued must resolve — to Cancelled, not hang *)
  check_bool "running job finished" true (Pool.await blocker = Ok 1);
  List.iter
    (fun p ->
      match Pool.await p with
      | Error Pool.Cancelled -> ()
      | Ok _ | Error _ -> Alcotest.fail "queued job must resolve Cancelled")
    queued;
  Pool.shutdown_now pool (* idempotent *)

(* {1 Cache} *)

let divider () = L.voltage_divider ()

let test_cache_hit_miss () =
  let cache = Cache.create () in
  let m1 = Cache.compile cache (divider ()) in
  let m2 = Cache.compile cache (divider ()) in
  check_bool "same model shared" true (m1 == m2);
  let s = Cache.stats cache in
  check_int "misses" 1 s.Cache.misses;
  check_int "hits" 1 s.Cache.hits;
  check_int "size" 1 s.Cache.size

let test_cache_config_sensitivity () =
  let cache = Cache.create () in
  let net = divider () in
  let _ = Cache.compile cache net in
  let config = { Model.default_config with Model.trusted = [ "vin" ] } in
  let _ = Cache.compile cache ~config net in
  let s = Cache.stats cache in
  check_int "distinct configs miss separately" 2 s.Cache.misses;
  check_int "no spurious hit" 0 s.Cache.hits

let test_cache_fault_sensitivity () =
  let net = divider () in
  let faulty = F.inject net (F.short "r2" ~parameter:"R") in
  check_bool "fault changes fingerprint" true
    (Cache.fingerprint net <> Cache.fingerprint faulty);
  check_string "fingerprint is stable" (Cache.fingerprint net)
    (Cache.fingerprint (divider ()))

let test_cache_eviction () =
  let cache = Cache.create ~capacity:2 () in
  let nets =
    [ divider ();
      L.diode_resistor ~powered:true ();
      L.rc_lowpass () ]
  in
  List.iter (fun n -> ignore (Cache.compile cache n)) nets;
  let s = Cache.stats cache in
  check_int "bounded" 2 s.Cache.size;
  check_int "evicted one" 1 s.Cache.evictions;
  (* LRU: the first (least recently used) entry was the victim *)
  ignore (Cache.compile cache (L.rc_lowpass ()));
  let s = Cache.stats cache in
  check_int "recent entry still resident" 1 s.Cache.hits;
  ignore (Cache.compile cache (divider ()));
  let s = Cache.stats cache in
  check_int "oldest entry was evicted" 4 s.Cache.misses

(* Satellite: the schema/version tag.  v1 entries held compiled models,
   v2 holds flat schedules; the tag leads the fingerprint input, so the
   two representations live under disjoint keys — a consumer can never
   be handed a stale-format value — and a stale-format entry behaves
   like any never-requeried key: it ages out through LRU eviction. *)
let test_cache_schema_mismatch () =
  let net = divider () in
  check_bool "current schema is v2" true (Cache.schema_version = 2);
  (* disjointness: same netlist, same config, different schema tag *)
  check_bool "v1 key never collides with v2" true
    (Cache.fingerprint ~schema:1 net <> Cache.fingerprint net);
  check_string "explicit current schema is the default key"
    (Cache.fingerprint ~schema:Cache.schema_version net)
    (Cache.fingerprint net);
  let config = { Model.default_config with Model.trusted = [ "vin" ] } in
  check_bool "disjoint under every config" true
    (Cache.fingerprint ~schema:1 ~config net
    <> Cache.fingerprint ~config net);
  (* the mismatch eviction path: an old-schema entry is exactly an
     entry whose key the upgraded process never asks for again, so
     under capacity pressure it is the LRU victim while live keys stay
     resident *)
  let cache = Cache.create ~capacity:2 () in
  ignore (Cache.compile cache net) (* the "stale" entry: never re-keyed *);
  ignore (Cache.compile cache (L.rc_lowpass ()));
  ignore (Cache.compile cache (L.rc_lowpass ())) (* keep the live key warm *);
  ignore (Cache.compile cache (L.diode_resistor ~powered:true ()));
  let s = Cache.stats cache in
  check_int "stale entry evicted" 1 s.Cache.evictions;
  check_int "live keys resident" 2 s.Cache.size;
  ignore (Cache.compile cache (L.rc_lowpass ()));
  check_int "live key still hits" 2 (Cache.stats cache).Cache.hits;
  ignore (Cache.compile cache net);
  check_int "stale key is gone: recompiles" 4 (Cache.stats cache).Cache.misses

let test_cache_clear () =
  let cache = Cache.create () in
  ignore (Cache.compile cache (divider ()));
  Cache.clear cache;
  check_int "empty" 0 (Cache.stats cache).Cache.size;
  ignore (Cache.compile cache (divider ()));
  check_int "recompiled" 2 (Cache.stats cache).Cache.misses

(* {1 Batch determinism} *)

(* A cheap faulty-divider job: small circuit, real conflicts. *)
let divider_job ?prelude i =
  let nominal = divider () in
  let faulty = F.inject nominal (F.shifted "r2" ~parameter:"R" 6.8e3) in
  let sol = Flames_sim.Mna.solve faulty in
  let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 } in
  let obs =
    Flames_sim.Measure.probe_all ~instrument sol [ Q.voltage "out" ]
  in
  Batch.job ?prelude ~label:(Printf.sprintf "divider-%02d" i) nominal obs

let render (r : Flames_core.Diagnose.result) =
  Format.asprintf "%a" Flames_core.Report.pp_result r

let test_batch_determinism_fig7 () =
  (* the acceptance bar: the parallel five-defect fig-7 sweep is
     byte-identical to the sequential Diagnose.run path *)
  let jobs = Flames_experiments.Fig7.jobs () in
  let sequential, _ = Batch.sequential jobs in
  let outcomes, stats = Batch.run ~workers:4 jobs in
  check_int "all ok" 5 stats.Stats.succeeded;
  check_int "one topology, one compile" 1 stats.Stats.cache_misses;
  check_int "remaining jobs hit the cache" 4 stats.Stats.cache_hits;
  List.iter2
    (fun seq outcome ->
      match outcome with
      | Ok par -> check_string "byte-identical report" (render seq) (render par)
      | Error _ -> Alcotest.fail "parallel job failed")
    sequential outcomes

let test_batch_order () =
  let jobs = List.init 12 divider_job in
  let outcomes, _ = Batch.run ~workers:4 jobs in
  check_int "all returned" 12 (List.length outcomes);
  List.iter
    (fun o -> check_bool "ok" true (Result.is_ok o))
    outcomes

let test_batch_stress_4_workers () =
  (* 48 jobs through 4 domains on one shared cache: results must be
     complete, in submission order, and identical to the sequential
     reference *)
  let jobs = List.init 48 divider_job in
  let cache = Cache.create () in
  let sequential, _ = Batch.sequential ~cache jobs in
  let outcomes, stats = Batch.run ~workers:4 ~cache jobs in
  check_int "all succeeded" 48 stats.Stats.succeeded;
  check_int "none failed" 0 stats.Stats.failed;
  check_bool "cache reused across batches" true
    (stats.Stats.cache_hits = 48 && stats.Stats.cache_misses = 0);
  List.iter2
    (fun seq outcome ->
      match outcome with
      | Ok par -> check_string "identical" (render seq) (render par)
      | Error _ -> Alcotest.fail "stress job failed")
    sequential outcomes

let test_batch_timeout () =
  (* an absurdly short deadline fails the job without poisoning the pool *)
  let jobs = Flames_experiments.Fig7.jobs () in
  let outcomes, stats = Batch.run ~workers:2 ~timeout:1e-9 jobs in
  check_int "nothing succeeded" 0 stats.Stats.succeeded;
  check_int "all failed" 5 stats.Stats.failed;
  List.iter
    (fun o ->
      match o with
      | Error (Batch.Err.Cancelled | Batch.Err.Timed_out) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected a deadline failure")
    outcomes

(* {1 Retry and load shedding} *)

let test_batch_retry_flaky () =
  let attempts = Atomic.make 0 in
  let job =
    divider_job 0 ~prelude:(fun _attempt ->
        if Atomic.fetch_and_add attempts 1 < 2 then failwith "transient")
  in
  let retry = Batch.retry ~attempts:3 ~base_delay:0.001 ~max_delay:0.005 () in
  let outcomes, stats = Batch.run ~workers:2 ~retry [ job ] in
  (match outcomes with
  | [ Ok _ ] -> ()
  | [ Error e ] ->
    Alcotest.failf "flaky job failed: %s" (Batch.Err.to_string e)
  | _ -> Alcotest.fail "one outcome expected");
  check_int "two retries recorded" 2 stats.Stats.retried;
  check_int "three attempts ran" 3 (Atomic.get attempts)

let test_batch_retry_exhausted () =
  let job = divider_job 0 ~prelude:(fun _ -> failwith "permanent") in
  let retry = Batch.retry ~attempts:2 ~base_delay:0.001 () in
  let outcomes, stats = Batch.run ~workers:1 ~retry [ job ] in
  (match outcomes with
  | [ Error (Batch.Err.Unexpected _) ] -> ()
  | [ Error e ] ->
    Alcotest.failf "expected Unexpected, got %s" (Batch.Err.to_string e)
  | _ -> Alcotest.fail "expected the final attempt's error");
  check_int "one retry before giving up" 1 stats.Stats.retried

let test_batch_breaker_sheds_retry () =
  (* threshold 1: the first failure opens the circuit, so the retry is
     shed instead of submitted — and shedding is not a retry *)
  let job = divider_job 0 ~prelude:(fun _ -> failwith "permanent") in
  let retry = Batch.retry ~attempts:3 ~base_delay:0.001 () in
  let breaker = Breaker.create ~threshold:1 ~cooldown:60. () in
  let outcomes, stats = Batch.run ~workers:1 ~retry ~breaker [ job ] in
  (match outcomes with
  | [ Error (Batch.Err.Breaker_open _) ] -> ()
  | [ Error e ] ->
    Alcotest.failf "expected Breaker_open, got %s" (Batch.Err.to_string e)
  | _ -> Alcotest.fail "one outcome expected");
  check_int "shed recorded" 1 stats.Stats.shed;
  check_int "no retry submitted" 0 stats.Stats.retried

let test_breaker_lifecycle () =
  let now = ref 0. in
  let b = Breaker.create ~threshold:2 ~cooldown:1.0 ~now:(fun () -> !now) () in
  check_bool "closed allows" true (Breaker.decide b "k" = `Allow);
  Breaker.failure b "k";
  check_bool "below threshold still allows" true (Breaker.decide b "k" = `Allow);
  Breaker.failure b "k";
  check_bool "open sheds" true (Breaker.decide b "k" = `Shed);
  check_bool "open state" true (Breaker.state b "k" = `Open);
  check_bool "other keys unaffected" true (Breaker.decide b "other" = `Allow);
  now := 1.5;
  check_bool "cooldown elapsed: probe allowed" true
    (Breaker.decide b "k" = `Allow);
  check_bool "half-open sheds non-probes" true (Breaker.decide b "k" = `Shed);
  Breaker.failure b "k";
  check_bool "probe failure re-opens" true (Breaker.state b "k" = `Open);
  now := 3.0;
  check_bool "second probe allowed" true (Breaker.decide b "k" = `Allow);
  Breaker.success b "k";
  check_bool "probe success closes" true (Breaker.state b "k" = `Closed);
  check_bool "closed again allows" true (Breaker.decide b "k" = `Allow)

let test_explosion_parallel_matches () =
  let sizes = [ 2; 4 ] in
  let seq = Flames_experiments.Explosion.run ~sizes () in
  let par, stats = Flames_experiments.Explosion.run_parallel ~workers:2 ~sizes () in
  check_bool "points identical" true (seq = par);
  check_int "distinct topologies all miss" 2 stats.Stats.cache_misses

let () =
  Alcotest.run "flames_engine"
    [
      ( "pool",
        [
          Alcotest.test_case "submit/await" `Quick test_pool_submit_await;
          Alcotest.test_case "order preserved" `Quick test_pool_order_preserved;
          Alcotest.test_case "exception isolation" `Quick test_pool_exception;
          Alcotest.test_case "cancel queued" `Quick test_pool_cancel_queued;
          Alcotest.test_case "cancel finished" `Quick test_pool_cancel_finished;
          Alcotest.test_case "timeout running" `Quick test_pool_timeout_running;
          Alcotest.test_case "timeout queued" `Quick test_pool_timeout_queued;
          Alcotest.test_case "graceful shutdown" `Quick
            test_pool_shutdown_drains;
          Alcotest.test_case "kill: crashed after retries" `Quick
            test_pool_kill_crashed;
          Alcotest.test_case "queue_depth/in_flight introspection" `Quick
            test_pool_introspection;
          Alcotest.test_case "introspection across a crash" `Quick
            test_pool_introspection_crash;
          Alcotest.test_case "kill: requeue succeeds" `Quick
            test_pool_kill_requeued;
          Alcotest.test_case "shutdown_now cancels queued" `Quick
            test_pool_shutdown_now_cancels;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss counters" `Quick test_cache_hit_miss;
          Alcotest.test_case "config in the key" `Quick
            test_cache_config_sensitivity;
          Alcotest.test_case "fault changes the key" `Quick
            test_cache_fault_sensitivity;
          Alcotest.test_case "LRU eviction" `Quick test_cache_eviction;
          Alcotest.test_case "schema mismatch" `Quick
            test_cache_schema_mismatch;
          Alcotest.test_case "clear" `Quick test_cache_clear;
        ] );
      ( "batch",
        [
          Alcotest.test_case "fig7 determinism" `Slow
            test_batch_determinism_fig7;
          Alcotest.test_case "submission order" `Quick test_batch_order;
          Alcotest.test_case "4-worker stress" `Slow
            test_batch_stress_4_workers;
          Alcotest.test_case "per-job timeout" `Quick test_batch_timeout;
          Alcotest.test_case "scaling series parity" `Slow
            test_explosion_parallel_matches;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "retry: flaky job recovers" `Quick
            test_batch_retry_flaky;
          Alcotest.test_case "retry: exhausted" `Quick
            test_batch_retry_exhausted;
          Alcotest.test_case "breaker sheds the retry" `Quick
            test_batch_breaker_sheds_retry;
          Alcotest.test_case "breaker lifecycle" `Quick
            test_breaker_lifecycle;
        ] );
    ]
