(* Tests for the batch-diagnosis engine: the domain worker pool, the
   model-compilation cache, and the determinism guarantee of the batch
   runner against the sequential [Diagnose.run] path. *)

module I = Flames_fuzzy.Interval
module Q = Flames_circuit.Quantity
module F = Flames_circuit.Fault
module L = Flames_circuit.Library
module Pool = Flames_engine.Pool
module Cache = Flames_engine.Cache
module Batch = Flames_engine.Batch
module Stats = Flames_engine.Stats
module Model = Flames_core.Model

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* {1 Pool} *)

let test_pool_submit_await () =
  Pool.with_pool ~workers:2 (fun pool ->
      let p = Pool.submit pool (fun () -> 6 * 7) in
      match Pool.await p with
      | Ok v -> check_int "result" 42 v
      | Error _ -> Alcotest.fail "job failed")

let test_pool_order_preserved () =
  Pool.with_pool ~workers:4 (fun pool ->
      let promises =
        List.init 32 (fun i -> Pool.submit pool (fun () -> i * i))
      in
      let results = List.map Pool.await promises in
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> check_int "square" (i * i) v
          | Error _ -> Alcotest.fail "job failed")
        results)

exception Boom

let test_pool_exception () =
  Pool.with_pool ~workers:1 (fun pool ->
      let p = Pool.submit pool (fun () -> raise Boom) in
      (match Pool.await p with
      | Error (Pool.Failed Boom) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Failed Boom");
      (* the worker survives a raising job *)
      match Pool.await (Pool.submit pool (fun () -> 1)) with
      | Ok v -> check_int "worker alive" 1 v
      | Error _ -> Alcotest.fail "worker died")

let test_pool_cancel_queued () =
  Pool.with_pool ~workers:1 (fun pool ->
      (* occupy the single worker, then cancel a queued job *)
      let blocker = Pool.submit pool (fun () -> Unix.sleepf 0.2) in
      let victim = Pool.submit pool (fun () -> 99) in
      Unix.sleepf 0.02 (* let the worker pick up the blocker *);
      check_bool "cancelled" true (Pool.cancel victim);
      (match Pool.await victim with
      | Error Pool.Cancelled -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Cancelled");
      check_bool "blocker unaffected" true (Pool.await blocker = Ok ()))

let test_pool_cancel_finished () =
  Pool.with_pool ~workers:1 (fun pool ->
      let p = Pool.submit pool (fun () -> 5) in
      ignore (Pool.await p);
      check_bool "cannot cancel finished" false (Pool.cancel p);
      check_bool "result kept" true (Pool.await p = Ok 5))

let test_pool_timeout_running () =
  Pool.with_pool ~workers:1 (fun pool ->
      let p = Pool.submit pool ~timeout:0.05 (fun () -> Unix.sleepf 0.5; 1) in
      let t0 = Unix.gettimeofday () in
      (match Pool.await p with
      | Error Pool.Timed_out -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Timed_out");
      let waited = Unix.gettimeofday () -. t0 in
      check_bool "await returned at the deadline, not at job end" true
        (waited < 0.4))

let test_pool_timeout_queued () =
  Pool.with_pool ~workers:1 (fun pool ->
      let _blocker = Pool.submit pool (fun () -> Unix.sleepf 0.2) in
      let p = Pool.submit pool ~timeout:0.03 (fun () -> 1) in
      match Pool.await p with
      | Error Pool.Cancelled -> ()
      | Ok _ | Error (Pool.Timed_out | Pool.Failed _) ->
        Alcotest.fail "expected Cancelled (deadline passed while queued)")

let test_pool_shutdown_drains () =
  let pool = Pool.create ~workers:2 () in
  let promises = List.init 8 (fun i -> Pool.submit pool (fun () -> i)) in
  Pool.shutdown pool;
  (* graceful: every queued job ran before the workers exited *)
  List.iteri
    (fun i p -> check_bool "ran" true (Pool.await p = Ok i))
    promises;
  (match Pool.submit pool (fun () -> 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "submit after shutdown must raise");
  Pool.shutdown pool (* idempotent *)

(* {1 Cache} *)

let divider () = L.voltage_divider ()

let test_cache_hit_miss () =
  let cache = Cache.create () in
  let m1 = Cache.compile cache (divider ()) in
  let m2 = Cache.compile cache (divider ()) in
  check_bool "same model shared" true (m1 == m2);
  let s = Cache.stats cache in
  check_int "misses" 1 s.Cache.misses;
  check_int "hits" 1 s.Cache.hits;
  check_int "size" 1 s.Cache.size

let test_cache_config_sensitivity () =
  let cache = Cache.create () in
  let net = divider () in
  let _ = Cache.compile cache net in
  let config = { Model.default_config with Model.trusted = [ "vin" ] } in
  let _ = Cache.compile cache ~config net in
  let s = Cache.stats cache in
  check_int "distinct configs miss separately" 2 s.Cache.misses;
  check_int "no spurious hit" 0 s.Cache.hits

let test_cache_fault_sensitivity () =
  let net = divider () in
  let faulty = F.inject net (F.short "r2" ~parameter:"R") in
  check_bool "fault changes fingerprint" true
    (Cache.fingerprint net <> Cache.fingerprint faulty);
  check_string "fingerprint is stable" (Cache.fingerprint net)
    (Cache.fingerprint (divider ()))

let test_cache_eviction () =
  let cache = Cache.create ~capacity:2 () in
  let nets =
    [ divider ();
      L.diode_resistor ~powered:true ();
      L.rc_lowpass () ]
  in
  List.iter (fun n -> ignore (Cache.compile cache n)) nets;
  let s = Cache.stats cache in
  check_int "bounded" 2 s.Cache.size;
  check_int "evicted one" 1 s.Cache.evictions;
  (* LRU: the first (least recently used) entry was the victim *)
  ignore (Cache.compile cache (L.rc_lowpass ()));
  let s = Cache.stats cache in
  check_int "recent entry still resident" 1 s.Cache.hits;
  ignore (Cache.compile cache (divider ()));
  let s = Cache.stats cache in
  check_int "oldest entry was evicted" 4 s.Cache.misses

let test_cache_clear () =
  let cache = Cache.create () in
  ignore (Cache.compile cache (divider ()));
  Cache.clear cache;
  check_int "empty" 0 (Cache.stats cache).Cache.size;
  ignore (Cache.compile cache (divider ()));
  check_int "recompiled" 2 (Cache.stats cache).Cache.misses

(* {1 Batch determinism} *)

(* A cheap faulty-divider job: small circuit, real conflicts. *)
let divider_job i =
  let nominal = divider () in
  let faulty = F.inject nominal (F.shifted "r2" ~parameter:"R" 6.8e3) in
  let sol = Flames_sim.Mna.solve faulty in
  let instrument = { Flames_sim.Measure.relative = 0.002; floor = 5e-4 } in
  let obs =
    Flames_sim.Measure.probe_all ~instrument sol [ Q.voltage "out" ]
  in
  Batch.job ~label:(Printf.sprintf "divider-%02d" i) nominal obs

let render (r : Flames_core.Diagnose.result) =
  Format.asprintf "%a" Flames_core.Report.pp_result r

let test_batch_determinism_fig7 () =
  (* the acceptance bar: the parallel five-defect fig-7 sweep is
     byte-identical to the sequential Diagnose.run path *)
  let jobs = Flames_experiments.Fig7.jobs () in
  let sequential, _ = Batch.sequential jobs in
  let outcomes, stats = Batch.run ~workers:4 jobs in
  check_int "all ok" 5 stats.Stats.succeeded;
  check_int "one topology, one compile" 1 stats.Stats.cache_misses;
  check_int "remaining jobs hit the cache" 4 stats.Stats.cache_hits;
  List.iter2
    (fun seq outcome ->
      match outcome with
      | Ok par -> check_string "byte-identical report" (render seq) (render par)
      | Error _ -> Alcotest.fail "parallel job failed")
    sequential outcomes

let test_batch_order () =
  let jobs = List.init 12 divider_job in
  let outcomes, _ = Batch.run ~workers:4 jobs in
  check_int "all returned" 12 (List.length outcomes);
  List.iter
    (fun o -> check_bool "ok" true (Result.is_ok o))
    outcomes

let test_batch_stress_4_workers () =
  (* 48 jobs through 4 domains on one shared cache: results must be
     complete, in submission order, and identical to the sequential
     reference *)
  let jobs = List.init 48 divider_job in
  let cache = Cache.create () in
  let sequential, _ = Batch.sequential ~cache jobs in
  let outcomes, stats = Batch.run ~workers:4 ~cache jobs in
  check_int "all succeeded" 48 stats.Stats.succeeded;
  check_int "none failed" 0 stats.Stats.failed;
  check_bool "cache reused across batches" true
    (stats.Stats.cache_hits = 48 && stats.Stats.cache_misses = 0);
  List.iter2
    (fun seq outcome ->
      match outcome with
      | Ok par -> check_string "identical" (render seq) (render par)
      | Error _ -> Alcotest.fail "stress job failed")
    sequential outcomes

let test_batch_timeout () =
  (* an absurdly short deadline fails the job without poisoning the pool *)
  let jobs = Flames_experiments.Fig7.jobs () in
  let outcomes, stats = Batch.run ~workers:2 ~timeout:1e-9 jobs in
  check_int "nothing succeeded" 0 stats.Stats.succeeded;
  check_int "all failed" 5 stats.Stats.failed;
  List.iter
    (fun o ->
      match o with
      | Error (Pool.Cancelled | Pool.Timed_out) -> ()
      | Ok _ | Error (Pool.Failed _) ->
        Alcotest.fail "expected a deadline failure")
    outcomes

let test_explosion_parallel_matches () =
  let sizes = [ 2; 4 ] in
  let seq = Flames_experiments.Explosion.run ~sizes () in
  let par, stats = Flames_experiments.Explosion.run_parallel ~workers:2 ~sizes () in
  check_bool "points identical" true (seq = par);
  check_int "distinct topologies all miss" 2 stats.Stats.cache_misses

let () =
  Alcotest.run "flames_engine"
    [
      ( "pool",
        [
          Alcotest.test_case "submit/await" `Quick test_pool_submit_await;
          Alcotest.test_case "order preserved" `Quick test_pool_order_preserved;
          Alcotest.test_case "exception isolation" `Quick test_pool_exception;
          Alcotest.test_case "cancel queued" `Quick test_pool_cancel_queued;
          Alcotest.test_case "cancel finished" `Quick test_pool_cancel_finished;
          Alcotest.test_case "timeout running" `Quick test_pool_timeout_running;
          Alcotest.test_case "timeout queued" `Quick test_pool_timeout_queued;
          Alcotest.test_case "graceful shutdown" `Quick
            test_pool_shutdown_drains;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss counters" `Quick test_cache_hit_miss;
          Alcotest.test_case "config in the key" `Quick
            test_cache_config_sensitivity;
          Alcotest.test_case "fault changes the key" `Quick
            test_cache_fault_sensitivity;
          Alcotest.test_case "LRU eviction" `Quick test_cache_eviction;
          Alcotest.test_case "clear" `Quick test_cache_clear;
        ] );
      ( "batch",
        [
          Alcotest.test_case "fig7 determinism" `Slow
            test_batch_determinism_fig7;
          Alcotest.test_case "submission order" `Quick test_batch_order;
          Alcotest.test_case "4-worker stress" `Slow
            test_batch_stress_4_workers;
          Alcotest.test_case "per-job timeout" `Quick test_batch_timeout;
          Alcotest.test_case "scaling series parity" `Slow
            test_explosion_parallel_matches;
        ] );
    ]
