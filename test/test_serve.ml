(* flames_serve: the JSON module, the HTTP parser over pipes, admission
   control with an injected clock, and a loopback end-to-end exercise of
   the whole service — diagnose, metrics scrape, protocol errors,
   quotas, graceful drain. *)

module Json = Flames_serve.Json
module Http = Flames_serve.Http
module Admission = Flames_serve.Admission
module Server = Flames_serve.Server
module Router = Flames_serve.Router
module Version = Flames_serve.Version

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* {1 Json} *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("nil", Json.Null);
        ("yes", Json.Bool true);
        ("n", Json.Num 42.);
        ("x", Json.Num 0.125);
        ("s", Json.Str "quote \" backslash \\ newline \n tab \t");
        ("a", Json.Arr [ Json.Num 1.; Json.Str "two"; Json.Bool false ]);
        ("o", Json.Obj [ ("k", Json.Str "v") ]);
      ]
  in
  let text = Json.to_string v in
  check_bool "roundtrip" true (Json.parse text = v);
  check_string "integral numbers print bare" "42" (Json.to_string (Json.Num 42.));
  check_string "non-finite prints null" "null" (Json.to_string (Json.Num Float.nan))

let test_json_errors () =
  let bad s =
    match Json.parse_result s with
    | Ok _ -> Alcotest.failf "parsed %S" s
    | Error m -> check_bool "error mentions a position" true (contains m "at ")
  in
  bad "{";
  bad "[1,]";
  bad "tru";
  bad "\"unterminated";
  bad "1 2";
  bad ""

let test_json_accessors () =
  let j = Json.parse {|{"a": 1.5, "s": "x", "l": [1]}|} in
  check_bool "mem hit" true (Json.mem "a" j = Some (Json.Num 1.5));
  check_bool "mem miss" true (Json.mem "zz" j = None);
  check_string "str" "x" (Json.str (Json.Str "x"));
  check_bool "num" true (Json.num (Json.Num 1.5) = 1.5);
  check_bool "str_opt on num" true (Json.str_opt (Json.Num 1.) = None);
  check_bool "num_opt" true (Json.num_opt (Json.Num 2.) = Some 2.);
  check_bool "list_opt" true (Json.list_opt (Json.Arr []) = Some []);
  (match Json.str (Json.Num 1.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "str on a number must raise")

(* {1 Http over a pipe} *)

let with_bytes bytes f =
  let r, w = Unix.pipe ~cloexec:true () in
  let n = String.length bytes in
  let written = Unix.write_substring w bytes 0 n in
  check_int "test bytes fit the pipe buffer" n written;
  Unix.close w;
  Fun.protect ~finally:(fun () -> Unix.close r) (fun () -> f (Http.conn r))

let test_http_requests () =
  (* two pipelined keep-alive requests, then a clean EOF *)
  let bytes =
    "POST /diagnose?x=1 HTTP/1.1\r\nHost: t\r\nX-Flames-Client: c7\r\n\
     Content-Length: 4\r\n\r\nbodyGET /healthz HTTP/1.0\r\n\r\n"
  in
  with_bytes bytes (fun conn ->
      (match Http.read_request conn with
      | Ok r ->
        check_string "meth" "POST" r.Http.meth;
        check_string "path" "/diagnose" r.Http.path;
        check_string "query" "x=1" r.Http.query;
        check_string "body" "body" r.Http.body;
        check_bool "header lookup is case-insensitive" true
          (Http.header r.Http.headers "x-flames-CLIENT" = Some "c7");
        check_bool "1.1 keeps alive" true (Http.keep_alive r)
      | Error _ -> Alcotest.fail "first request must parse");
      (match Http.read_request conn with
      | Ok r ->
        check_string "second meth" "GET" r.Http.meth;
        check_string "second body" "" r.Http.body;
        check_bool "1.0 closes by default" false (Http.keep_alive r)
      | Error _ -> Alcotest.fail "second request must parse");
      match Http.read_request conn with
      | Error Http.Eof -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected a clean EOF")

let test_http_malformed () =
  with_bytes "NOT-AN-HTTP-REQUEST\r\n\r\n" (fun conn ->
      match Http.read_request conn with
      | Error (Http.Malformed _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Malformed");
  with_bytes "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n" (fun conn ->
      match Http.read_request conn with
      | Error (Http.Malformed _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Malformed header")

let test_http_too_large () =
  (* rejected from Content-Length alone: the body bytes are not there *)
  with_bytes "POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n" (fun conn ->
      match Http.read_request ~max_body:64 conn with
      | Error (Http.Too_large n) -> check_int "declared size" 999 n
      | Ok _ | Error _ -> Alcotest.fail "expected Too_large")

let test_http_response_roundtrip () =
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      Unix.close r;
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      Http.write_response w
        ~headers:[ ("Retry-After", "1") ]
        ~status:429 {|{"error":"shed"}|};
      Unix.close w;
      match Http.read_response (Http.conn r) with
      | Ok resp ->
        check_int "status" 429 resp.Http.status;
        check_string "reason" "Too Many Requests" resp.Http.reason;
        check_bool "header" true
          (Http.header resp.Http.resp_headers "retry-after" = Some "1");
        check_string "body" {|{"error":"shed"}|} resp.Http.resp_body
      | Error _ -> Alcotest.fail "response must parse")

(* {1 Admission} *)

let test_admission_saturation () =
  let a = Admission.create ~max_inflight:2 () in
  check_bool "first admitted" true (Admission.admit a ~client:"a" = Admission.Admitted);
  check_bool "second admitted" true (Admission.admit a ~client:"b" = Admission.Admitted);
  (match Admission.admit a ~client:"c" with
  | Admission.Shed { reason = Admission.Saturated; retry_after } ->
    check_bool "retry_after positive" true (retry_after > 0.)
  | Admission.Admitted | Admission.Shed _ -> Alcotest.fail "expected Saturated");
  check_int "in_flight" 2 (Admission.in_flight a);
  Admission.release a;
  check_bool "slot freed" true (Admission.admit a ~client:"c" = Admission.Admitted)

let test_admission_quota () =
  let now = ref 0. in
  let a =
    Admission.create ~now:(fun () -> !now) ~max_inflight:100 ~quota_rate:1.
      ~quota_burst:2. ()
  in
  (* burst of 2, then dry; other clients have their own buckets *)
  check_bool "burst 1" true (Admission.admit a ~client:"x" = Admission.Admitted);
  check_bool "burst 2" true (Admission.admit a ~client:"x" = Admission.Admitted);
  (match Admission.admit a ~client:"x" with
  | Admission.Shed { reason = Admission.Throttled; retry_after } ->
    check_bool "refill eta about 1s" true
      (retry_after > 0.9 && retry_after <= 1.0)
  | Admission.Admitted | Admission.Shed _ -> Alcotest.fail "expected Throttled");
  check_bool "other client unaffected" true
    (Admission.admit a ~client:"y" = Admission.Admitted);
  (* one token back after one second on the fake clock *)
  now := 1.0;
  check_bool "refilled" true (Admission.admit a ~client:"x" = Admission.Admitted);
  check_bool "only one token refilled" true
    (match Admission.admit a ~client:"x" with
    | Admission.Shed { reason = Admission.Throttled; _ } -> true
    | Admission.Admitted | Admission.Shed _ -> false)

let test_retry_after_header () =
  check_bool "rounded up" true
    (Admission.retry_after_header 3.2 = ("Retry-After", "4"));
  check_bool "at least one second" true
    (Admission.retry_after_header 0.05 = ("Retry-After", "1"))

(* {1 Loopback end-to-end} *)

let request ~port ?(meth = "GET") ?(headers = []) ?content_type ?(body = "")
    path =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Http.write_request fd ~headers ?content_type ~meth ~path body;
      match Http.read_response (Http.conn fd) with
      | Ok r -> r
      | Error _ -> Alcotest.fail "no parsable response")

let with_server ?config f =
  let server = Server.start ?config () in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let body_json (r : Http.response) =
  match Json.parse_result r.Http.resp_body with
  | Ok j -> j
  | Error m -> Alcotest.failf "response body is not JSON (%s): %s" m r.Http.resp_body

let one_line s =
  String.length s > 0
  && s.[String.length s - 1] = '\n'
  && not (String.contains (String.sub s 0 (String.length s - 1)) '\n')

let ephemeral = { Server.default_config with port = 0; workers = 1 }

let test_e2e_probes () =
  with_server ~config:ephemeral (fun server ->
      let port = Server.port server in
      let health = request ~port "/healthz" in
      check_int "healthz" 200 health.Http.status;
      check_string "healthz body" "ok\n" health.Http.resp_body;
      let version = request ~port "/version" in
      check_int "version status" 200 version.Http.status;
      check_bool "version body" true
        (contains version.Http.resp_body Version.current);
      let ready = request ~port "/readyz" in
      check_int "readyz" 200 ready.Http.status;
      let j = body_json ready in
      check_bool "ready" true (Json.mem "ready" j = Some (Json.Bool true));
      check_bool "pool introspection exposed" true
        (Json.mem "queue_depth" j <> None && Json.mem "in_flight" j <> None);
      let missing = request ~port "/no-such" in
      check_int "404" 404 missing.Http.status;
      let wrong = request ~port ~meth:"POST" "/healthz" in
      check_int "405" 405 wrong.Http.status;
      check_bool "Allow header" true
        (Http.header wrong.Http.resp_headers "allow" = Some "GET"))

let test_e2e_diagnose () =
  with_server ~config:ephemeral (fun server ->
      let port = Server.port server in
      let resp =
        request ~port ~meth:"POST" "/diagnose"
          ~body:{|{"circuit": "divider", "fault": "r2.R=short"}|}
      in
      check_int "diagnose status" 200 resp.Http.status;
      let j = body_json resp in
      check_bool "not healthy" true
        (Json.mem "healthy" j = Some (Json.Bool false));
      check_bool "r2 suspected" true (contains resp.Http.resp_body "r2");
      check_bool "latency reported" true
        (match Option.bind (Json.mem "elapsed_ms" j) Json.num_opt with
        | Some ms -> ms >= 0.
        | None -> false);
      (* same scenario as a plain-text batch line *)
      let text =
        request ~port ~meth:"POST" "/diagnose" ~content_type:"text/plain"
          ~body:"divider r2.R=short"
      in
      check_int "text-line status" 200 text.Http.status;
      check_bool "text-line diagnoses r2" true (contains text.Http.resp_body "r2");
      (* `curl -d` sends a form content-type: a '{'-opening body must
         still be read as JSON, so the README example works verbatim *)
      let curlish =
        request ~port ~meth:"POST" "/diagnose"
          ~content_type:"application/x-www-form-urlencoded"
          ~body:{|{"circuit": "divider", "fault": "r2.R=short"}|}
      in
      check_int "form-encoded JSON status" 200 curlish.Http.status;
      check_bool "form-encoded JSON diagnoses r2" true
        (contains curlish.Http.resp_body "r2");
      (* client-supplied observations bypass the simulator: a divider
         with mid at 2 V instead of the nominal 5 V is conflicted *)
      let netlist =
        ".circuit t\n.ground gnd\nV vs in gnd 10\nR r1 in mid 10k\nR r2 mid \
         gnd 10k\n"
      in
      let obs_body =
        Json.to_string
          (Json.Obj
             [
               ("netlist", Json.Str netlist);
               ( "observations",
                 Json.Arr
                   [
                     Json.Obj
                       [
                         ("node", Json.Str "mid");
                         ("value", Json.Num 2.);
                         ("spread", Json.Num 0.05);
                       ];
                   ] );
             ])
      in
      let obs = request ~port ~meth:"POST" "/diagnose" ~body:obs_body in
      check_int "netlist+observations status" 200 obs.Http.status;
      check_bool "observation conflicts" true
        (Json.mem "healthy" (body_json obs) = Some (Json.Bool false));
      (* the scrape sees the requests that just ran *)
      let metrics = request ~port "/metrics" in
      check_int "metrics status" 200 metrics.Http.status;
      check_bool "serve counters exported" true
        (contains metrics.Http.resp_body "flames_serve_requests_total"))

let test_e2e_input_errors () =
  with_server ~config:ephemeral (fun server ->
      let port = Server.port server in
      let expect_400 name body mentions =
        let r = request ~port ~meth:"POST" "/diagnose" ~body in
        check_int (name ^ " status") 400 r.Http.status;
        check_bool (name ^ " one-line error") true (one_line r.Http.resp_body);
        check_bool
          (Printf.sprintf "%s mentions %S (got %S)" name mentions
             r.Http.resp_body)
          true
          (contains r.Http.resp_body mentions)
      in
      expect_400 "bad json" {|{"circuit": }|} "error";
      expect_400 "unknown circuit" {|{"circuit": "nope"}|} "unknown circuit";
      expect_400 "bad fault" {|{"circuit": "divider", "fault": "bogus"}|}
        "bad fault spec";
      expect_400 "unknown component"
        {|{"circuit": "divider", "fault": "r9.R=short"}|} "no such component";
      expect_400 "unknown probe" {|{"circuit": "divider", "probes": ["zz"]}|}
        "unknown probe";
      expect_400 "neither circuit nor netlist" {|{}|} "needs";
      expect_400 "bad netlist" {|{"netlist": "R broken\n"}|} "netlist")

let test_e2e_limits () =
  let config =
    {
      ephemeral with
      max_body = 128;
      quota_rate = 0.2;
      quota_burst = 1.;
    }
  in
  with_server ~config (fun server ->
      let port = Server.port server in
      let big = String.make 512 'x' in
      let r = request ~port ~meth:"POST" "/diagnose" ~body:big in
      check_int "oversized body" 413 r.Http.status;
      check_bool "413 is one line" true (one_line r.Http.resp_body);
      (* burst of 1: the second request inside the refill window is
         throttled with a Retry-After *)
      let ok =
        request ~port ~meth:"POST" "/diagnose" ~body:{|{"circuit":"divider"}|}
      in
      check_int "first request admitted" 200 ok.Http.status;
      let shed =
        request ~port ~meth:"POST" "/diagnose" ~body:{|{"circuit":"divider"}|}
      in
      check_int "second request throttled" 429 shed.Http.status;
      check_bool "Retry-After present" true
        (Http.header shed.Http.resp_headers "retry-after" <> None))

(* {1 Session registry (injected clock)} *)

let test_sessions_ttl () =
  let now = ref 0. in
  let reg = Admission.Sessions.create ~now:(fun () -> !now) ~cap:4 ~ttl:10. () in
  let id =
    match Admission.Sessions.put reg "payload" with
    | Ok id -> id
    | Error `Capacity -> Alcotest.fail "empty registry refused a session"
  in
  check_bool "live entry found" true
    (Admission.Sessions.with_session reg id (fun v -> v) = Some "payload");
  (* each access refreshes the deadline *)
  now := 8.;
  check_bool "touched before expiry" true
    (Admission.Sessions.with_session reg id (fun v -> v) = Some "payload");
  now := 16.;
  check_bool "refresh kept it alive" true
    (Admission.Sessions.with_session reg id (fun v -> v) = Some "payload");
  (* idle past the TTL: lazily expired on the next access *)
  now := 27.;
  check_bool "expired after idle TTL" true
    (Admission.Sessions.with_session reg id (fun v -> v) = None);
  check_int "expired entry dropped" 0 (Admission.Sessions.count reg);
  check_bool "remove on gone id" false (Admission.Sessions.remove reg id)

let test_sessions_cap () =
  let now = ref 0. in
  let reg = Admission.Sessions.create ~now:(fun () -> !now) ~cap:2 ~ttl:5. () in
  let put () = Admission.Sessions.put reg () in
  check_bool "first fits" true (Result.is_ok (put ()));
  let second = match put () with Ok id -> id | Error _ -> Alcotest.fail "cap 2" in
  check_bool "at capacity" true (put () = Error `Capacity);
  (* closing one frees a slot... *)
  check_bool "close frees" true (Admission.Sessions.remove reg second);
  check_bool "slot reusable" true (Result.is_ok (put ()));
  (* ...and so does expiry: put sweeps the dead before deciding *)
  now := 6.;
  check_int "sweep drops both" 2 (Admission.Sessions.sweep reg);
  check_bool "capacity back after expiry" true (Result.is_ok (put ()))

(* {1 Session e2e over loopback} *)

let post ~port ?headers path body =
  request ~port ~meth:"POST" ?headers ~body path

let json_num j key =
  match Option.bind (Json.mem key j) Json.num_opt with
  | Some n -> n
  | None -> Alcotest.failf "response lacks numeric %S" key

let test_e2e_session_loop () =
  with_server ~config:ephemeral (fun server ->
      let port = Server.port server in
      (* open a session on the divider with a shorted lower leg *)
      let created = post ~port "/session/create" {|{"circuit": "divider"}|} in
      check_int "create status" 200 created.Http.status;
      let sid =
        match
          Option.bind (Json.mem "session" (body_json created)) Json.str_opt
        with
        | Some id -> id
        | None -> Alcotest.fail "create reply lacks a session id"
      in
      let step path body = post ~port (Printf.sprintf "/session/%s/%s" sid path) body in
      (* healthy so far: no measurements *)
      let d0 = step "diagnoses" "{}" in
      check_int "empty diagnoses status" 200 d0.Http.status;
      check_bool "healthy before measurements" true
        (Json.mem "healthy" (body_json d0) = Some (Json.Bool true));
      (* the shorted divider pulls mid to ~0 V *)
      let m1 = step "measure" {|{"node": "mid", "value": 0.02, "spread": 0.05}|} in
      check_int "measure status" 200 m1.Http.status;
      let m1_id = json_num (body_json m1) "id" in
      let m2 = step "measure" {|{"node": "in", "value": 10.0, "spread": 0.1}|} in
      check_int "second measure status" 200 m2.Http.status;
      let d1 = step "diagnoses" "{}" in
      check_int "diagnoses status" 200 d1.Http.status;
      check_bool "symptomatic" true
        (Json.mem "healthy" (body_json d1) = Some (Json.Bool false));
      check_bool "r2 among suspects" true (contains d1.Http.resp_body "r2");
      (* the recommendation must not repeat a measured point *)
      let next = step "next" "{}" in
      check_int "next status" 200 next.Http.status;
      check_bool "next does not re-probe mid" false
        (contains next.Http.resp_body "V(mid)");
      (* retract the symptom: back to healthy *)
      let retract =
        step "retract" (Printf.sprintf {|{"id": %d}|} (int_of_float m1_id))
      in
      check_int "retract status" 200 retract.Http.status;
      let d2 = step "diagnoses" "{}" in
      check_bool "healthy after retraction" true
        (Json.mem "healthy" (body_json d2) = Some (Json.Bool true));
      (* retracting it again is a 404 on the measurement *)
      let gone =
        step "retract" (Printf.sprintf {|{"id": %d}|} (int_of_float m1_id))
      in
      check_int "double retract" 404 gone.Http.status;
      (* close, then every step 404s *)
      check_int "close status" 200 (step "close" "{}").Http.status;
      check_int "step after close" 404 (step "diagnoses" "{}").Http.status;
      (* unknown ids and unknown verbs 404 *)
      check_int "unknown session" 404
        (post ~port "/session/zz/diagnoses" "{}").Http.status;
      check_int "unknown verb" 404
        (post ~port (Printf.sprintf "/session/%s/frob" sid) "{}").Http.status;
      (* GET on a session route is a 405 *)
      check_int "session requires POST" 405
        (request ~port "/session/create").Http.status)

let test_e2e_session_cap () =
  let config = { ephemeral with session_cap = 2 } in
  with_server ~config (fun server ->
      let port = Server.port server in
      let create () = post ~port "/session/create" {|{"circuit": "divider"}|} in
      check_int "first session" 200 (create ()).Http.status;
      check_int "second session" 200 (create ()).Http.status;
      let shed = create () in
      check_int "cap sheds with 429" 429 shed.Http.status;
      check_bool "Retry-After present" true
        (Http.header shed.Http.resp_headers "retry-after" <> None);
      check_bool "error is one line" true (one_line shed.Http.resp_body);
      (* the trace id is echoed even on a shed *)
      let traced_shed =
        post ~port
          ~headers:[ ("X-Flames-Trace-Id", "shed-trace-1") ]
          "/session/create" {|{"circuit": "divider"}|}
      in
      check_int "still shedding" 429 traced_shed.Http.status;
      check_bool "429 echoes the trace id" true
        (Http.header traced_shed.Http.resp_headers "x-flames-trace-id"
        = Some "shed-trace-1"))

let test_e2e_session_errors () =
  with_server ~config:ephemeral (fun server ->
      let port = Server.port server in
      let bad_create = post ~port "/session/create" {|{"circuit": "nope"}|} in
      check_int "unknown circuit" 400 bad_create.Http.status;
      let created = post ~port "/session/create" {|{"circuit": "divider"}|} in
      let sid =
        match
          Option.bind (Json.mem "session" (body_json created)) Json.str_opt
        with
        | Some id -> id
        | None -> Alcotest.fail "no session id"
      in
      let step path body = post ~port (Printf.sprintf "/session/%s/%s" sid path) body in
      check_int "unknown node" 400
        (step "measure" {|{"node": "zz", "value": 1}|}).Http.status;
      check_int "no node field" 400
        (step "measure" {|{"value": 1}|}).Http.status;
      check_int "retract without id" 400 (step "retract" "{}").Http.status;
      check_int "refine unknown measurement" 404
        (step "refine" {|{"id": 9, "value": 1}|}).Http.status)

(* {1 Readiness gate (router level)} *)

(* A deps record whose ready hook says the journal replay is still
   running: readiness and every session route must refuse with 503 +
   Retry-After while liveness stays green. *)
let test_router_recovering () =
  let pool = Flames_engine.Pool.create ~workers:1 () in
  Fun.protect ~finally:(fun () -> Flames_engine.Pool.shutdown pool)
  @@ fun () ->
  let deps =
    {
      Router.pool;
      cache = Flames_engine.Cache.create ();
      admission = Admission.create ();
      sessions = Admission.Sessions.create ();
      store = ref None;
      ready = (fun () -> false);
      draining = (fun () -> false);
      default_wall = 2.;
      max_wall = 10.;
    }
  in
  let req ?(meth = "GET") ?(body = "") path =
    Router.handle deps
      {
        Http.meth;
        path;
        query = "";
        version = "HTTP/1.1";
        headers = [];
        body;
      }
  in
  let expect_503 name (reply : Router.reply) =
    check_int (name ^ " answers 503") 503 reply.Router.status;
    check_bool (name ^ " has Retry-After") true
      (List.mem_assoc "Retry-After" reply.Router.headers);
    check_bool (name ^ " says recovering") true
      (contains reply.Router.body "recovering")
  in
  expect_503 "readyz" (req "/readyz");
  expect_503 "create" (req ~meth:"POST" ~body:{|{"circuit":"divider"}|} "/session/create");
  expect_503 "step" (req ~meth:"POST" ~body:"{}" "/session/s1/diagnoses");
  expect_503 "diagnose" (req ~meth:"POST" ~body:{|{"circuit":"divider"}|} "/diagnose");
  check_int "healthz stays live" 200 (req "/healthz").Router.status;
  check_int "version stays live" 200 (req "/version").Router.status;
  check_int "metrics stay scrapeable" 200 (req "/metrics").Router.status

(* {1 Sweep on lookup (injected clock)} *)

let test_sessions_sweep_on_lookup () =
  let module Metrics = Flames_obs.Metrics in
  let expired0 =
    Metrics.counter_value Flames_serve.Telemetry.sessions_expired_total
  in
  let now = ref 0. in
  let reg = Admission.Sessions.create ~now:(fun () -> !now) ~cap:8 ~ttl:10. () in
  let a =
    match Admission.Sessions.put reg "a" with
    | Ok id -> id
    | Error `Capacity -> Alcotest.fail "put a"
  in
  let _b =
    match Admission.Sessions.put reg "b" with
    | Ok id -> id
    | Error `Capacity -> Alcotest.fail "put b"
  in
  check_int "both live" 2 (Admission.Sessions.count reg);
  now := 25.;
  (* one lookup expires *every* idle entry, not only the touched one:
     before the sweep-on-lookup fix, b would linger holding capacity
     until a put or an explicit sweep *)
  check_bool "a expired" true
    (Admission.Sessions.with_session reg a (fun v -> v) = None);
  check_int "b swept by a's lookup" 0 (Admission.Sessions.count reg);
  let expired1 =
    Metrics.counter_value Flames_serve.Telemetry.sessions_expired_total
  in
  check_int "both expiries counted" 2 (expired1 - expired0)

(* A lookup can never resurrect an expired entry even when the gated
   full sweep does not run: the touched entry's own deadline is checked
   every time, while idle siblings wait (bounded) for the next due
   sweep — lookups stay O(1) amortised instead of sweeping the whole
   table under the registry lock on every request. *)
let test_sessions_gated_sweep () =
  let module Metrics = Flames_obs.Metrics in
  let expired0 =
    Metrics.counter_value Flames_serve.Telemetry.sessions_expired_total
  in
  let now = ref 0.5 in
  let reg = Admission.Sessions.create ~now:(fun () -> !now) ~cap:8 ~ttl:10. () in
  let put v =
    match Admission.Sessions.put reg v with
    | Ok id -> id
    | Error `Capacity -> Alcotest.failf "put %s" v
  in
  let a = put "a" in
  let _b = put "b" in
  now := 5.;
  let c = put "c" in
  now := 10.;
  (* a live lookup runs the due sweep (a and b still have 0.5 s left)
     and resets the sweep clock *)
  check_bool "c alive" true
    (Admission.Sessions.with_session reg c (fun v -> v) = Some "c");
  now := 10.6;
  (* a and b are now expired but the full sweep is not due again yet:
     the touched entry is still refused and dropped... *)
  check_bool "expired a refused on touch" true
    (Admission.Sessions.with_session reg a (fun v -> v) = None);
  (* ...while the idle sibling waits for the next due sweep *)
  check_int "b unswept inside the gate window" 2 (Admission.Sessions.count reg);
  now := 11.1;
  check_bool "unknown id lookup runs the due sweep" true
    (Admission.Sessions.with_session reg "zz" (fun v -> v) = None);
  check_int "b swept once due" 1 (Admission.Sessions.count reg);
  let expired1 =
    Metrics.counter_value Flames_serve.Telemetry.sessions_expired_total
  in
  check_int "both expiries counted" 2 (expired1 - expired0)

(* {1 Write-ahead ordering under journal failure (router level)} *)

(* Every mutating session route journals *before* touching in-memory
   state, so a failed append answers 500 with the step not applied:
   acknowledged memory never runs ahead of what a restart would
   replay, and a close can never be gone in memory yet live in the
   journal. A closed journal makes every append raise deterministically. *)
let test_router_journal_failure_keeps_state () =
  let pool = Flames_engine.Pool.create ~workers:1 () in
  Fun.protect ~finally:(fun () -> Flames_engine.Pool.shutdown pool)
  @@ fun () ->
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flames-serve-deadwal-%d" (Unix.getpid ()))
  in
  let dead = Flames_store.Journal.open_ ~fsync:Flames_store.Journal.Never dir in
  Flames_store.Journal.close dead;
  Fun.protect ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let store = ref (Some dead) in
  let deps =
    {
      Router.pool;
      cache = Flames_engine.Cache.create ();
      admission = Admission.create ();
      sessions = Admission.Sessions.create ~cap:1 ();
      store;
      ready = (fun () -> true);
      draining = (fun () -> false);
      default_wall = 2.;
      max_wall = 10.;
    }
  in
  let req ?(body = "") path =
    Router.handle deps
      {
        Http.meth = "POST";
        path;
        query = "";
        version = "HTTP/1.1";
        headers = [];
        body;
      }
  in
  (* create: the journal refuses, so the only registry slot must be
     rolled back, not leaked *)
  check_int "create with dead journal" 500
    (req ~body:{|{"circuit":"divider"}|} "/session/create").Router.status;
  store := None;
  let created = req ~body:{|{"circuit":"divider"}|} "/session/create" in
  check_int "rolled-back slot reusable" 200 created.Router.status;
  let sid =
    match
      Option.bind
        (Result.to_option (Json.parse_result created.Router.body))
        (fun j -> Option.bind (Json.mem "session" j) Json.str_opt)
    with
    | Some id -> id
    | None -> Alcotest.fail "no session id"
  in
  let step op body = req ~body (Printf.sprintf "/session/%s/%s" sid op) in
  check_int "seed measurement" 200
    (step "measure" {|{"node": "mid", "value": 0.02, "spread": 0.05}|}).Router.status;
  store := Some dead;
  (* measure: 500 and the measurement was never entered *)
  check_int "measure with dead journal" 500
    (step "measure" {|{"node": "in", "value": 10.0, "spread": 0.1}|}).Router.status;
  check_int "refused measurement not applied" 404
    (step "retract" {|{"id": 2}|}).Router.status;
  (* retract/refine of the surviving measurement: 500, still there *)
  check_int "retract with dead journal" 500
    (step "retract" {|{"id": 1}|}).Router.status;
  check_int "refine with dead journal" 500
    (step "refine" {|{"id": 1, "value": 0.03}|}).Router.status;
  (* close: 500 and the session must still be registered *)
  check_int "close with dead journal" 500 (step "close" "{}").Router.status;
  check_int "session survives the refused close" 200
    (step "diagnoses" "{}").Router.status;
  store := None;
  check_int "measurement 1 survived the refused mutations" 200
    (step "refine" {|{"id": 1, "value": 0.03}|}).Router.status;
  check_int "close once the journal is back" 200 (step "close" "{}").Router.status;
  check_int "closed for real" 404 (step "diagnoses" "{}").Router.status

(* {1 Byte-dribbled reads} *)

(* A session-route request fed to the server one byte at a time: the
   request parser must assemble frames across however many partial
   reads the transport produces (and retry reads interrupted by
   signals — a SIGALRM ticker runs while the bytes dribble). *)
let test_dribbled_request () =
  with_server ~config:ephemeral (fun server ->
      let port = Server.port server in
      let created = post ~port "/session/create" {|{"circuit": "divider"}|} in
      check_int "create status" 200 created.Http.status;
      let sid =
        match
          Option.bind (Json.mem "session" (body_json created)) Json.str_opt
        with
        | Some id -> id
        | None -> Alcotest.fail "no session id"
      in
      let body = {|{"node": "mid", "value": 0.02, "spread": 0.05}|} in
      let raw =
        Printf.sprintf
          "POST /session/%s/measure HTTP/1.1\r\nHost: t\r\nContent-Length: \
           %d\r\nConnection: close\r\n\r\n%s"
          sid (String.length body) body
      in
      let old_alarm =
        Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ()))
      in
      let old_timer =
        Unix.setitimer Unix.ITIMER_REAL
          { Unix.it_interval = 0.002; it_value = 0.002 }
      in
      Fun.protect
        ~finally:(fun () ->
          ignore (Unix.setitimer Unix.ITIMER_REAL old_timer);
          Sys.set_signal Sys.sigalrm old_alarm)
      @@ fun () ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          String.iteri
            (fun i c ->
              let rec put () =
                match Unix.write_substring fd (String.make 1 c) 0 1 with
                | 1 -> ()
                | _ -> Alcotest.fail "partial single-byte write"
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> put ()
              in
              put ();
              (* pause at frame-ish boundaries so the server really sees
                 the request arrive in many reads, not one burst *)
              if i mod 16 = 0 then Unix.sleepf 0.001)
            raw;
          match Http.read_response (Http.conn fd) with
          | Ok r ->
            check_int "dribbled request answered" 200 r.Http.status;
            check_bool "measurement entered" true
              (Json.mem "id" (body_json r) <> None)
          | Error _ -> Alcotest.fail "no parsable response to dribbled bytes"))

(* {1 Journaled restart (graceful drain)} *)

let test_e2e_journal_restart () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flames-serve-journal-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | exception Unix.Unix_error _ -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (try Sys.readdir path with Sys_error _ -> [||]);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let config = { ephemeral with Server.journal_dir = Some dir } in
  let stable (r : Http.response) =
    match body_json r with
    | Json.Obj fields ->
      Json.to_string
        (Json.Obj (List.filter (fun (k, _) -> k <> "elapsed_ms") fields))
    | j -> Json.to_string j
  in
  let sid = ref "" in
  let before = ref "" in
  with_server ~config (fun server ->
      let port = Server.port server in
      let created = post ~port "/session/create" {|{"circuit": "divider"}|} in
      check_int "create status" 200 created.Http.status;
      (sid :=
         match
           Option.bind (Json.mem "session" (body_json created)) Json.str_opt
         with
         | Some id -> id
         | None -> Alcotest.fail "no session id");
      let step verb body =
        post ~port (Printf.sprintf "/session/%s/%s" !sid verb) body
      in
      check_int "measure mid" 200
        (step "measure" {|{"node": "mid", "value": 0.02, "spread": 0.05}|})
          .Http.status;
      check_int "measure in" 200
        (step "measure" {|{"node": "in", "value": 10.0, "spread": 0.1}|})
          .Http.status;
      before := stable (step "diagnoses" "{}"));
  (* stop snapshotted the drain; a second server on the same directory
     resumes the same session id with the identical diagnosis *)
  with_server ~config (fun server ->
      let port = Server.port server in
      let after =
        stable (post ~port (Printf.sprintf "/session/%s/diagnoses" !sid) "{}")
      in
      check_string "diagnosis survives the restart" !before after;
      (* recovered ids are reserved: a fresh session gets a new one *)
      let fresh = post ~port "/session/create" {|{"circuit": "divider"}|} in
      check_int "fresh create after recovery" 200 fresh.Http.status;
      (match
         Option.bind (Json.mem "session" (body_json fresh)) Json.str_opt
       with
      | Some id -> check_bool "fresh id differs" true (id <> !sid)
      | None -> Alcotest.fail "no fresh session id");
      (* the journal directory was compacted to snapshots on restart *)
      let metrics = request ~port "/metrics" in
      check_bool "restore counted" true
        (contains metrics.Http.resp_body
           "flames_serve_sessions_restored_total 1");
      check_bool "ready gauge up" true
        (contains metrics.Http.resp_body "flames_serve_ready 1"))

(* {1 Request-scoped observability over loopback} *)

module Events = Flames_obs.Events
module Recorder = Flames_obs.Recorder

(* Probe both `dune runtest` and `dune exec` working directories, like
   test_cli.ml. *)
let cli =
  let candidates =
    [
      Filename.concat ".." (Filename.concat "bin" "flames_cli.exe");
      "_build/default/bin/flames_cli.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "flames_cli.exe not found (build bin/ first)"

let slurp path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_route_name () =
  check_string "session step collapses the id" "/session/*/measure"
    (Router.route_name "/session/s12/measure");
  check_string "create is its own route" "/session/create"
    (Router.route_name "/session/create");
  check_string "known path verbatim" "/diagnose" (Router.route_name "/diagnose");
  check_string "unknown paths collapse" "other" (Router.route_name "/no-such")

(* The acceptance loop of the issue: one client-chosen trace id on a
   /session/* exchange is found again on the response header, the wide
   event, the flight-recorder dump (in-process and over GET
   /debug/flight) and a `flames tail` filter of the event log. *)
let test_e2e_trace_id () =
  Events.clear ();
  let log = Filename.temp_file "flames_events" ".jsonl" in
  let close = Events.file_sink log in
  let trace = "e2e-cafe.0001" in
  let sid = ref "" in
  Fun.protect ~finally:(fun () -> Sys.remove log) @@ fun () ->
  Fun.protect ~finally:close (fun () ->
      with_server ~config:ephemeral (fun server ->
          let port = Server.port server in
          let traced = [ ("X-Flames-Trace-Id", trace) ] in
          let created =
            post ~port ~headers:traced "/session/create"
              {|{"circuit": "divider"}|}
          in
          check_int "create status" 200 created.Http.status;
          check_bool "client trace id echoed" true
            (Http.header created.Http.resp_headers "x-flames-trace-id"
            = Some trace);
          (sid :=
             match
               Option.bind (Json.mem "session" (body_json created)) Json.str_opt
             with
             | Some id -> id
             | None -> Alcotest.fail "no session id");
          let m =
            post ~port ~headers:traced
              (Printf.sprintf "/session/%s/measure" !sid)
              {|{"node": "mid", "value": 0.02, "spread": 0.05}|}
          in
          check_int "measure status" 200 m.Http.status;
          check_bool "echoed on the step too" true
            (Http.header m.Http.resp_headers "x-flames-trace-id" = Some trace);
          (* no header: a fresh 16-hex id is generated and echoed *)
          let bare =
            post ~port
              (Printf.sprintf "/session/%s/diagnoses" !sid)
              "{}"
          in
          (match Http.header bare.Http.resp_headers "x-flames-trace-id" with
          | Some id ->
            check_bool "generated id shape" true
              (String.length id = 16 && id <> trace)
          | None -> Alcotest.fail "no generated trace id");
          (* an invalid client id is replaced, not echoed *)
          let bad =
            request ~port
              ~headers:[ ("X-Flames-Trace-Id", "not a valid id!") ]
              "/version"
          in
          check_bool "invalid id replaced" true
            (match Http.header bad.Http.resp_headers "x-flames-trace-id" with
            | Some id -> id <> "not a valid id!"
            | None -> false);
          (* the wide events carry the trace and the session id *)
          let evs = Events.recent () in
          check_bool "wide event carries the trace id" true
            (List.exists
               (fun e ->
                 e.Events.name = "http.request"
                 && e.Events.trace_id = Some trace)
               evs);
          check_bool "session id joined to the step's event" true
            (List.exists
               (fun e ->
                 e.Events.trace_id = Some trace
                 && e.Events.session_id = Some !sid)
               evs);
          (* flight recorder: in-process dump and the debug route *)
          check_bool "recorder dump finds the trace" true
            (contains (Recorder.dump ()) trace);
          let flight = request ~port "/debug/flight" in
          check_int "flight status" 200 flight.Http.status;
          let fj = body_json flight in
          (match Json.mem "events" fj with
          | Some (Json.Arr events) ->
            check_bool "flight events non-empty" true (events <> []);
            check_bool "flight event carries the trace" true
              (List.exists
                 (fun e -> Json.mem "trace" e = Some (Json.Str trace))
                 events)
          | _ -> Alcotest.fail "flight dump lacks an events array");
          (match Json.mem "spans" fj with
          | Some (Json.Arr _) -> ()
          | _ -> Alcotest.fail "flight dump lacks a spans array")));
  (* the log survives the server: filter it down to the trace *)
  let out = Filename.temp_file "flames_tail" ".out" in
  Fun.protect ~finally:(fun () -> Sys.remove out) @@ fun () ->
  let code =
    Sys.command
      (Printf.sprintf "%s tail %s --trace %s >%s 2>/dev/null" cli
         (Filename.quote log) trace (Filename.quote out))
  in
  check_int "tail exits 0" 0 code;
  let text = slurp out in
  check_bool "tail finds the traced requests" true (contains text trace);
  check_bool "tail shows the session route" true (contains text "/session/");
  let code =
    Sys.command
      (Printf.sprintf "%s tail %s --trace no-such-trace >%s 2>/dev/null" cli
         (Filename.quote log) (Filename.quote out))
  in
  check_int "tail filter exits 0" 0 code;
  check_string "foreign trace filters to nothing" "" (slurp out)

let test_e2e_route_digests () =
  with_server ~config:ephemeral (fun server ->
      let port = Server.port server in
      check_int "warm-up" 200 (request ~port "/healthz").Http.status;
      let metrics = request ~port "/metrics" in
      check_int "metrics status" 200 metrics.Http.status;
      let body = metrics.Http.resp_body in
      List.iter
        (fun needle ->
          check_bool ("metrics contains " ^ needle) true (contains body needle))
        [
          "# TYPE flames_serve_route_seconds summary";
          "flames_serve_route_seconds{route=\"/healthz\",quantile=\"0.5\"}";
          "flames_serve_route_seconds{route=\"/healthz\",quantile=\"0.99\"}";
          "flames_serve_route_seconds_count{route=\"/healthz\"}";
          "flames_serve_route_seconds_slo_breaches_total";
          "flames_serve_session_capacity";
        ])

let test_e2e_drain () =
  let server = Server.start ~config:ephemeral () in
  let port = Server.port server in
  check_int "alive before the drain" 200 (request ~port "/healthz").Http.status;
  check_bool "not draining" false (Server.draining server);
  Server.stop server;
  check_bool "draining after stop" true (Server.draining server);
  (match request ~port "/healthz" with
  | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET), _, _) ->
    ()
  | exception _ -> ()
  | _ -> Alcotest.fail "the drained server must refuse connections");
  Server.stop server (* idempotent *)

let () =
  Alcotest.run "flames_serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "http",
        [
          Alcotest.test_case "pipelined requests" `Quick test_http_requests;
          Alcotest.test_case "malformed input" `Quick test_http_malformed;
          Alcotest.test_case "body size limit" `Quick test_http_too_large;
          Alcotest.test_case "response roundtrip" `Quick
            test_http_response_roundtrip;
        ] );
      ( "admission",
        [
          Alcotest.test_case "bounded queue sheds" `Quick
            test_admission_saturation;
          Alcotest.test_case "token buckets per client" `Quick
            test_admission_quota;
          Alcotest.test_case "Retry-After rounding" `Quick
            test_retry_after_header;
          Alcotest.test_case "session TTL (fake clock)" `Quick
            test_sessions_ttl;
          Alcotest.test_case "session cap and sweep" `Quick test_sessions_cap;
          Alcotest.test_case "sweep on lookup (fake clock)" `Quick
            test_sessions_sweep_on_lookup;
          Alcotest.test_case "gated sweep never resurrects (fake clock)" `Quick
            test_sessions_gated_sweep;
        ] );
      ( "readiness",
        [
          Alcotest.test_case "503 while recovering" `Quick
            test_router_recovering;
          Alcotest.test_case "journal failure keeps state consistent" `Quick
            test_router_journal_failure_keeps_state;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "probes and routing" `Quick test_e2e_probes;
          Alcotest.test_case "diagnose over loopback" `Quick test_e2e_diagnose;
          Alcotest.test_case "input error discipline" `Quick
            test_e2e_input_errors;
          Alcotest.test_case "size limit and quotas" `Quick test_e2e_limits;
          Alcotest.test_case "session troubleshooting loop" `Quick
            test_e2e_session_loop;
          Alcotest.test_case "session capacity sheds" `Quick
            test_e2e_session_cap;
          Alcotest.test_case "session input errors" `Quick
            test_e2e_session_errors;
          Alcotest.test_case "byte-dribbled session request" `Quick
            test_dribbled_request;
          Alcotest.test_case "journaled restart" `Quick
            test_e2e_journal_restart;
          Alcotest.test_case "graceful drain" `Quick test_e2e_drain;
        ] );
      ( "observability",
        [
          Alcotest.test_case "route names" `Quick test_route_name;
          Alcotest.test_case "trace id end to end" `Quick test_e2e_trace_id;
          Alcotest.test_case "route digests in /metrics" `Quick
            test_e2e_route_digests;
        ] );
    ]
