(* flames_obs: metrics registry semantics, span tracer invariants, the
   Chrome trace_event and Prometheus exporters, and the leveled logger.

   The exporter tests parse the emitted JSON with Flames_serve.Json
   (the repo deliberately has no JSON dependency) and check the schema
   invariants Perfetto relies on: every B event has a matching E on the
   same track, and timestamps are monotone per track. *)

module Metrics = Flames_obs.Metrics
module Trace = Flames_obs.Trace
module Log = Flames_obs.Log
module Export = Flames_obs.Export

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The exporter assertions parse JSON with the service's own parser —
   promoted from the in-test module this file used to carry. *)

module Json = Flames_serve.Json

(* {1 Metrics} *)

let test_counter () =
  Metrics.reset ();
  let c = Metrics.counter "obs_test_counter" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "incr and by" 42 (Metrics.counter_value c);
  let again = Metrics.counter "obs_test_counter" in
  Metrics.incr again;
  Alcotest.(check int) "find-or-create shares state" 43
    (Metrics.counter_value c)

let test_counter_domains () =
  Metrics.reset ();
  let c = Metrics.counter "obs_test_counter_mt" in
  let worker () =
    for _ = 1 to 10_000 do
      Metrics.incr c
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost increments across domains" 50_000
    (Metrics.counter_value c)

let test_gauge () =
  Metrics.reset ();
  let g = Metrics.gauge "obs_test_gauge" in
  Metrics.gauge_set g 3.5;
  Metrics.gauge_add g 1.25;
  Alcotest.(check (float 1e-9)) "set then add" 4.75 (Metrics.gauge_value g)

let test_kind_mismatch () =
  let _c = Metrics.counter "obs_test_kind" in
  Alcotest.check_raises "same name, different kind"
    (Invalid_argument
       "Metrics: \"obs_test_kind\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge "obs_test_kind"))

let test_histogram_buckets () =
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[ 1.; 2.; 5. ] "obs_test_hist" in
  (* le semantics: a value equal to a bound belongs to that bound's
     bucket, anything above every bound goes to the +inf overflow *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 5.0; 5.1; 100. ];
  Alcotest.(check (list (pair (float 0.) int)))
    "bucket boundaries (le)"
    [ (1., 2); (2., 2); (5., 1); (infinity, 2) ]
    (Metrics.histogram_buckets h);
  Alcotest.(check int) "count" 7 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 115.1 (Metrics.histogram_sum h)

let test_histogram_time () =
  Metrics.reset ();
  let h = Metrics.histogram "obs_test_time" in
  let v = Metrics.time h (fun () -> 7) in
  Alcotest.(check int) "time passes the result through" 7 v;
  Alcotest.(check int) "one observation" 1 (Metrics.histogram_count h);
  Alcotest.check_raises "time re-raises" Exit (fun () ->
      Metrics.time h (fun () -> raise Exit));
  Alcotest.(check int) "exception still observed" 2
    (Metrics.histogram_count h)

let test_snapshot () =
  Metrics.reset ();
  let c = Metrics.counter "obs_test_snap_c" in
  let g = Metrics.gauge "obs_test_snap_g" in
  Metrics.incr ~by:3 c;
  Metrics.gauge_set g 1.5;
  let samples = Metrics.snapshot () in
  let names = List.map (fun s -> s.Metrics.name) samples in
  Alcotest.(check bool) "sorted by name" true
    (names = List.sort compare names);
  let find n =
    (List.find (fun s -> s.Metrics.name = n) samples).Metrics.value
  in
  (match find "obs_test_snap_c" with
  | Metrics.Counter 3 -> ()
  | _ -> Alcotest.fail "counter sample");
  match find "obs_test_snap_g" with
  | Metrics.Gauge v -> Alcotest.(check (float 1e-9)) "gauge sample" 1.5 v
  | _ -> Alcotest.fail "gauge sample"

(* {1 Trace} *)

let test_disabled_noop () =
  Trace.reset ();
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  let v = Trace.with_span "quiet" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 v;
  Trace.instant "dropped";
  Alcotest.(check int) "nothing recorded" 0 (Trace.event_count ());
  Alcotest.check_raises "exception transparent" Exit (fun () ->
      Trace.with_span "quiet" (fun () -> raise Exit));
  Alcotest.(check int) "still nothing recorded" 0 (Trace.event_count ())

let test_span_nesting () =
  Trace.reset ();
  Trace.start ();
  let v =
    Trace.with_span "outer" (fun () ->
        Trace.with_span ~args:[ ("k", "v") ] "inner" (fun () -> 1) + 1)
  in
  (try Trace.with_span "raises" (fun () -> raise Exit)
   with Exit -> ());
  Trace.stop ();
  Alcotest.(check int) "result" 2 v;
  match Trace.tracks () with
  | [ (_tid, events) ] ->
    let shape =
      List.map
        (fun (e : Trace.event) ->
          ( e.Trace.name,
            match e.Trace.phase with
            | Trace.Begin -> "B"
            | Trace.End -> "E"
            | Trace.Instant -> "i" ))
        events
    in
    Alcotest.(check (list (pair string string)))
      "LIFO begin/end pairs, span closed on exception"
      [
        ("outer", "B"); ("inner", "B"); ("inner", "E"); ("outer", "E");
        ("raises", "B"); ("raises", "E");
      ]
      shape;
    let ts = List.map (fun (e : Trace.event) -> e.Trace.ts) events in
    Alcotest.(check bool) "timestamps monotone" true
      (ts = List.sort compare ts)
  | tracks ->
    Alcotest.failf "expected one track, got %d" (List.length tracks)

let test_multi_domain_merge () =
  Trace.reset ();
  Trace.start ();
  Trace.with_span "main-span" (fun () -> ());
  let worker name () = Trace.with_span name (fun () -> Unix.sleepf 0.002) in
  let d1 = Domain.spawn (worker "worker-a") in
  let d2 = Domain.spawn (worker "worker-b") in
  Domain.join d1;
  Domain.join d2;
  Trace.stop ();
  let tracks = Trace.tracks () in
  Alcotest.(check bool) "one track per domain" true (List.length tracks >= 3);
  let tids = List.map fst tracks in
  Alcotest.(check bool) "tracks sorted by domain id" true
    (tids = List.sort compare tids);
  Alcotest.(check int) "six events total" 6 (Trace.event_count ());
  let merged = Trace.events () in
  let ts = List.map (fun (e : Trace.event) -> e.Trace.ts) merged in
  Alcotest.(check bool) "merge sorted by timestamp" true
    (ts = List.sort compare ts);
  Alcotest.(check bool) "merge deterministic" true (merged = Trace.events ())

(* {1 Exporters} *)

(* Replays a recording like the one above and checks what Perfetto
   needs: parseable JSON, a traceEvents array, thread_name metadata,
   and per-track well-formedness (B/E properly nested and matched by
   name, timestamps monotone). *)
let test_chrome_trace_schema () =
  Trace.reset ();
  Trace.start ();
  Trace.with_span "stage.one" (fun () ->
      Trace.with_span "stage.two" (fun () -> Trace.instant "tick"));
  let d = Domain.spawn (fun () -> Trace.with_span "stage.par" ignore) in
  Domain.join d;
  Trace.stop ();
  let text = Format.asprintf "%t" Export.chrome_trace in
  let json = Json.parse text in
  let events =
    match Json.mem "traceEvents" json with
    | Some (Json.Arr events) -> events
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "non-empty" true (events <> []);
  let field name e =
    match Json.mem name e with
    | Some v -> v
    | None -> Alcotest.failf "event without %S" name
  in
  let metadata, spans =
    List.partition (fun e -> Json.str (field "ph" e) = "M") events
  in
  Alcotest.(check bool) "thread_name metadata per track" true
    (metadata <> []
    && List.for_all
         (fun e -> Json.str (field "name" e) = "thread_name")
         metadata);
  (* per-track stack discipline and monotone clocks *)
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 4 in
  let last_ts : (int, float ref) Hashtbl.t = Hashtbl.create 4 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  List.iter
    (fun e ->
      let tid = int_of_float (Json.num (field "tid" e)) in
      let ts = Json.num (field "ts" e) in
      let last =
        match Hashtbl.find_opt last_ts tid with
        | Some r -> r
        | None ->
          let r = ref neg_infinity in
          Hashtbl.add last_ts tid r;
          r
      in
      Alcotest.(check bool) "track timestamps monotone" true (ts >= !last);
      last := ts;
      let stack = stack_of tid in
      let name = Json.str (field "name" e) in
      match Json.str (field "ph" e) with
      | "B" -> stack := name :: !stack
      | "E" -> begin
        match !stack with
        | top :: rest ->
          Alcotest.(check string) "E matches innermost B" top name;
          stack := rest
        | [] -> Alcotest.fail "E without B"
      end
      | "i" -> ()
      | ph -> Alcotest.failf "unexpected phase %S" ph)
    spans;
  Hashtbl.iter
    (fun tid stack ->
      if !stack <> [] then Alcotest.failf "unclosed span on track %d" tid)
    stacks

let test_prometheus_export () =
  Metrics.reset ();
  Trace.reset ();
  let c = Metrics.counter ~help:"test counter" "obs_test_prom_total" in
  let h = Metrics.histogram ~buckets:[ 0.1; 1. ] "obs_test_prom_seconds" in
  Metrics.incr ~by:2 c;
  Metrics.observe h 0.05;
  Metrics.observe h 10.;
  let text = Format.asprintf "%t" Export.prometheus in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains text needle))
    [
      "# HELP obs_test_prom_total test counter";
      "# TYPE obs_test_prom_total counter";
      "obs_test_prom_total 2";
      "# TYPE obs_test_prom_seconds histogram";
      "obs_test_prom_seconds_bucket{le=\"0.1\"} 1";
      (* cumulative: the +Inf bucket counts every observation *)
      "obs_test_prom_seconds_bucket{le=\"+Inf\"} 2";
      "obs_test_prom_seconds_count 2";
    ]

(* {1 Log} *)

let test_log_levels () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Log.set_formatter ppf;
  Log.set_level Log.Info;
  Fun.protect
    ~finally:(fun () ->
      Log.set_formatter Format.err_formatter;
      Log.set_level Log.Warn)
    (fun () ->
      Log.err "boom %d" 1;
      Log.info "visible %s" "line";
      Log.debug "invisible";
      Format.pp_print_flush ppf ();
      let out = Buffer.contents buf in
      Alcotest.(check bool) "error logged" true (contains out "boom 1");
      Alcotest.(check bool) "info logged at level info" true
        (contains out "visible line");
      Alcotest.(check bool) "level tag present" true (contains out "info");
      Alcotest.(check bool) "debug filtered" false (contains out "invisible"))

(* {1 Engine stats JSON} *)

let test_stats_json () =
  let stats =
    {
      Flames_engine.Stats.jobs = 5;
      succeeded = 4;
      failed = 1;
      workers = 2;
      conflicts = 7;
      cache_hits = 4;
      cache_misses = 1;
      wall_time = 0.5;
      cpu_time = 0.75;
      retried = 0;
      shed = 0;
      degraded = 0;
      compile_wall = 0.125;
      diagnose_wall = 0.25;
    }
  in
  let json = Json.parse (Flames_engine.Stats.to_json stats) in
  let num k =
    match Json.mem k json with
    | Some (Json.Num f) -> f
    | _ -> Alcotest.failf "missing field %S" k
  in
  Alcotest.(check (float 1e-9)) "jobs" 5. (num "jobs");
  Alcotest.(check (float 1e-9)) "succeeded" 4. (num "succeeded");
  Alcotest.(check (float 1e-9)) "failed" 1. (num "failed");
  Alcotest.(check (float 1e-9)) "workers" 2. (num "workers");
  Alcotest.(check (float 1e-9)) "conflicts" 7. (num "conflicts");
  Alcotest.(check (float 1e-9)) "cache_hits" 4. (num "cache_hits");
  Alcotest.(check (float 1e-9)) "wall_s" 0.5 (num "wall_s");
  Alcotest.(check (float 1e-9)) "jobs_per_s" 10. (num "jobs_per_s");
  Alcotest.(check (float 1e-9)) "compile_s" 0.125 (num "compile_s");
  Alcotest.(check (float 1e-9)) "diagnose_s" 0.25 (num "diagnose_s")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "counter-domains" `Quick test_counter_domains;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "kind-mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram-buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram-time" `Quick test_histogram_time;
          Alcotest.test_case "snapshot" `Quick test_snapshot;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled-noop" `Quick test_disabled_noop;
          Alcotest.test_case "span-nesting" `Quick test_span_nesting;
          Alcotest.test_case "multi-domain-merge" `Quick
            test_multi_domain_merge;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome-trace-schema" `Quick
            test_chrome_trace_schema;
          Alcotest.test_case "prometheus" `Quick test_prometheus_export;
        ] );
      ("log", [ Alcotest.test_case "levels" `Quick test_log_levels ]);
      ( "stats-json",
        [ Alcotest.test_case "schema" `Quick test_stats_json ] );
    ]
