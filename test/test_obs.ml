(* flames_obs: metrics registry semantics, span tracer invariants, the
   Chrome trace_event and Prometheus exporters, and the leveled logger.

   The exporter tests parse the emitted JSON with Flames_serve.Json
   (the repo deliberately has no JSON dependency) and check the schema
   invariants Perfetto relies on: every B event has a matching E on the
   same track, and timestamps are monotone per track. *)

module Metrics = Flames_obs.Metrics
module Trace = Flames_obs.Trace
module Log = Flames_obs.Log
module Export = Flames_obs.Export
module Ids = Flames_obs.Ids
module Context = Flames_obs.Context
module Events = Flames_obs.Events
module Qdigest = Flames_obs.Digest
module Recorder = Flames_obs.Recorder

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The exporter assertions parse JSON with the service's own parser —
   promoted from the in-test module this file used to carry. *)

module Json = Flames_serve.Json

(* {1 Metrics} *)

let test_counter () =
  Metrics.reset ();
  let c = Metrics.counter "obs_test_counter" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "incr and by" 42 (Metrics.counter_value c);
  let again = Metrics.counter "obs_test_counter" in
  Metrics.incr again;
  Alcotest.(check int) "find-or-create shares state" 43
    (Metrics.counter_value c)

let test_counter_domains () =
  Metrics.reset ();
  let c = Metrics.counter "obs_test_counter_mt" in
  let worker () =
    for _ = 1 to 10_000 do
      Metrics.incr c
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost increments across domains" 50_000
    (Metrics.counter_value c)

let test_gauge () =
  Metrics.reset ();
  let g = Metrics.gauge "obs_test_gauge" in
  Metrics.gauge_set g 3.5;
  Metrics.gauge_add g 1.25;
  Alcotest.(check (float 1e-9)) "set then add" 4.75 (Metrics.gauge_value g)

let test_kind_mismatch () =
  let _c = Metrics.counter "obs_test_kind" in
  Alcotest.check_raises "same name, different kind"
    (Invalid_argument
       "Metrics: \"obs_test_kind\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge "obs_test_kind"))

let test_histogram_buckets () =
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[ 1.; 2.; 5. ] "obs_test_hist" in
  (* le semantics: a value equal to a bound belongs to that bound's
     bucket, anything above every bound goes to the +inf overflow *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 5.0; 5.1; 100. ];
  Alcotest.(check (list (pair (float 0.) int)))
    "bucket boundaries (le)"
    [ (1., 2); (2., 2); (5., 1); (infinity, 2) ]
    (Metrics.histogram_buckets h);
  Alcotest.(check int) "count" 7 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 115.1 (Metrics.histogram_sum h)

let test_histogram_time () =
  Metrics.reset ();
  let h = Metrics.histogram "obs_test_time" in
  let v = Metrics.time h (fun () -> 7) in
  Alcotest.(check int) "time passes the result through" 7 v;
  Alcotest.(check int) "one observation" 1 (Metrics.histogram_count h);
  Alcotest.check_raises "time re-raises" Exit (fun () ->
      Metrics.time h (fun () -> raise Exit));
  Alcotest.(check int) "exception still observed" 2
    (Metrics.histogram_count h)

let test_snapshot () =
  Metrics.reset ();
  let c = Metrics.counter "obs_test_snap_c" in
  let g = Metrics.gauge "obs_test_snap_g" in
  Metrics.incr ~by:3 c;
  Metrics.gauge_set g 1.5;
  let samples = Metrics.snapshot () in
  let names = List.map (fun s -> s.Metrics.name) samples in
  Alcotest.(check bool) "sorted by name" true
    (names = List.sort compare names);
  let find n =
    (List.find (fun s -> s.Metrics.name = n) samples).Metrics.value
  in
  (match find "obs_test_snap_c" with
  | Metrics.Counter 3 -> ()
  | _ -> Alcotest.fail "counter sample");
  match find "obs_test_snap_g" with
  | Metrics.Gauge v -> Alcotest.(check (float 1e-9)) "gauge sample" 1.5 v
  | _ -> Alcotest.fail "gauge sample"

(* {1 Trace} *)

let test_disabled_noop () =
  Trace.reset ();
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  let v = Trace.with_span "quiet" (fun () -> 42) in
  Alcotest.(check int) "value passes through" 42 v;
  Trace.instant "dropped";
  Alcotest.(check int) "nothing recorded" 0 (Trace.event_count ());
  Alcotest.check_raises "exception transparent" Exit (fun () ->
      Trace.with_span "quiet" (fun () -> raise Exit));
  Alcotest.(check int) "still nothing recorded" 0 (Trace.event_count ())

let test_span_nesting () =
  Trace.reset ();
  Trace.start ();
  let v =
    Trace.with_span "outer" (fun () ->
        Trace.with_span ~args:[ ("k", "v") ] "inner" (fun () -> 1) + 1)
  in
  (try Trace.with_span "raises" (fun () -> raise Exit)
   with Exit -> ());
  Trace.stop ();
  Alcotest.(check int) "result" 2 v;
  match Trace.tracks () with
  | [ (_tid, events) ] ->
    let shape =
      List.map
        (fun (e : Trace.event) ->
          ( e.Trace.name,
            match e.Trace.phase with
            | Trace.Begin -> "B"
            | Trace.End -> "E"
            | Trace.Instant -> "i" ))
        events
    in
    Alcotest.(check (list (pair string string)))
      "LIFO begin/end pairs, span closed on exception"
      [
        ("outer", "B"); ("inner", "B"); ("inner", "E"); ("outer", "E");
        ("raises", "B"); ("raises", "E");
      ]
      shape;
    let ts = List.map (fun (e : Trace.event) -> e.Trace.ts) events in
    Alcotest.(check bool) "timestamps monotone" true
      (ts = List.sort compare ts)
  | tracks ->
    Alcotest.failf "expected one track, got %d" (List.length tracks)

let test_multi_domain_merge () =
  Trace.reset ();
  Trace.start ();
  Trace.with_span "main-span" (fun () -> ());
  let worker name () = Trace.with_span name (fun () -> Unix.sleepf 0.002) in
  let d1 = Domain.spawn (worker "worker-a") in
  let d2 = Domain.spawn (worker "worker-b") in
  Domain.join d1;
  Domain.join d2;
  Trace.stop ();
  let tracks = Trace.tracks () in
  Alcotest.(check bool) "one track per domain" true (List.length tracks >= 3);
  let tids = List.map fst tracks in
  Alcotest.(check bool) "tracks sorted by domain id" true
    (tids = List.sort compare tids);
  Alcotest.(check int) "six events total" 6 (Trace.event_count ());
  let merged = Trace.events () in
  let ts = List.map (fun (e : Trace.event) -> e.Trace.ts) merged in
  Alcotest.(check bool) "merge sorted by timestamp" true
    (ts = List.sort compare ts);
  Alcotest.(check bool) "merge deterministic" true (merged = Trace.events ())

(* {1 Exporters} *)

(* Replays a recording like the one above and checks what Perfetto
   needs: parseable JSON, a traceEvents array, thread_name metadata,
   and per-track well-formedness (B/E properly nested and matched by
   name, timestamps monotone). *)
let test_chrome_trace_schema () =
  Trace.reset ();
  Trace.start ();
  Trace.with_span "stage.one" (fun () ->
      Trace.with_span "stage.two" (fun () -> Trace.instant "tick"));
  let d = Domain.spawn (fun () -> Trace.with_span "stage.par" ignore) in
  Domain.join d;
  Trace.stop ();
  let text = Format.asprintf "%t" Export.chrome_trace in
  let json = Json.parse text in
  let events =
    match Json.mem "traceEvents" json with
    | Some (Json.Arr events) -> events
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "non-empty" true (events <> []);
  let field name e =
    match Json.mem name e with
    | Some v -> v
    | None -> Alcotest.failf "event without %S" name
  in
  let metadata, spans =
    List.partition (fun e -> Json.str (field "ph" e) = "M") events
  in
  Alcotest.(check bool) "thread_name metadata per track" true
    (metadata <> []
    && List.for_all
         (fun e -> Json.str (field "name" e) = "thread_name")
         metadata);
  (* per-track stack discipline and monotone clocks *)
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 4 in
  let last_ts : (int, float ref) Hashtbl.t = Hashtbl.create 4 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  List.iter
    (fun e ->
      let tid = int_of_float (Json.num (field "tid" e)) in
      let ts = Json.num (field "ts" e) in
      let last =
        match Hashtbl.find_opt last_ts tid with
        | Some r -> r
        | None ->
          let r = ref neg_infinity in
          Hashtbl.add last_ts tid r;
          r
      in
      Alcotest.(check bool) "track timestamps monotone" true (ts >= !last);
      last := ts;
      let stack = stack_of tid in
      let name = Json.str (field "name" e) in
      match Json.str (field "ph" e) with
      | "B" -> stack := name :: !stack
      | "E" -> begin
        match !stack with
        | top :: rest ->
          Alcotest.(check string) "E matches innermost B" top name;
          stack := rest
        | [] -> Alcotest.fail "E without B"
      end
      | "i" -> ()
      | ph -> Alcotest.failf "unexpected phase %S" ph)
    spans;
  Hashtbl.iter
    (fun tid stack ->
      if !stack <> [] then Alcotest.failf "unclosed span on track %d" tid)
    stacks

let test_prometheus_export () =
  Metrics.reset ();
  Trace.reset ();
  let c = Metrics.counter ~help:"test counter" "obs_test_prom_total" in
  let h = Metrics.histogram ~buckets:[ 0.1; 1. ] "obs_test_prom_seconds" in
  Metrics.incr ~by:2 c;
  Metrics.observe h 0.05;
  Metrics.observe h 10.;
  let text = Format.asprintf "%t" Export.prometheus in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains text needle))
    [
      "# HELP obs_test_prom_total test counter";
      "# TYPE obs_test_prom_total counter";
      "obs_test_prom_total 2";
      "# TYPE obs_test_prom_seconds histogram";
      "obs_test_prom_seconds_bucket{le=\"0.1\"} 1";
      (* cumulative: the +Inf bucket counts every observation *)
      "obs_test_prom_seconds_bucket{le=\"+Inf\"} 2";
      "obs_test_prom_seconds_count 2";
    ]

(* {1 Log} *)

let test_log_levels () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Log.set_formatter ppf;
  Log.set_level Log.Info;
  Fun.protect
    ~finally:(fun () ->
      Log.set_formatter Format.err_formatter;
      Log.set_level Log.Warn)
    (fun () ->
      Log.err "boom %d" 1;
      Log.info "visible %s" "line";
      Log.debug "invisible";
      Format.pp_print_flush ppf ();
      let out = Buffer.contents buf in
      Alcotest.(check bool) "error logged" true (contains out "boom 1");
      Alcotest.(check bool) "info logged at level info" true
        (contains out "visible line");
      Alcotest.(check bool) "level tag present" true (contains out "info");
      Alcotest.(check bool) "debug filtered" false (contains out "invisible"))

(* {1 Ids} *)

let test_ids_deterministic () =
  Ids.seed 42;
  let a = Ids.trace_id () in
  let b = Ids.span_id () in
  Ids.seed 42;
  Alcotest.(check string) "seeded stream replays" a (Ids.trace_id ());
  Alcotest.(check string) "span ids too" b (Ids.span_id ());
  Alcotest.(check int) "trace id is 16 hex chars" 16 (String.length a);
  Alcotest.(check int) "span id is 8 hex chars" 8 (String.length b);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digit" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    (a ^ b)

let test_ids_unique_across_domains () =
  Ids.seed 7;
  let per_domain = 1_000 in
  let gen () = Array.init per_domain (fun _ -> Ids.trace_id ()) in
  let domains = List.init 4 (fun _ -> Domain.spawn gen) in
  let mine = gen () in
  let all = mine :: List.map Domain.join domains in
  let seen = Hashtbl.create 4096 in
  List.iter (Array.iter (fun id -> Hashtbl.replace seen id ())) all;
  Alcotest.(check int) "no collisions under contention" (5 * per_domain)
    (Hashtbl.length seen)

let test_ids_valid () =
  List.iter
    (fun (expect, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "valid %S" s)
        expect (Ids.valid s))
    [
      (true, "abc-123.X_z");
      (true, String.make 64 'a');
      (false, "");
      (false, String.make 65 'a');
      (false, "has space");
      (false, "quote\"");
      (false, "new\nline");
    ]

(* {1 Context} *)

let test_context_nesting () =
  Alcotest.(check bool) "no context by default" true (Context.current () = None);
  (* annotations without a context are silent no-ops *)
  Context.annotate "dropped" (Context.Int 1);
  Context.add_timing "dropped" 1.0;
  let c1 = Context.make ~trace_id:"t1" () in
  let c2 = Context.make ~trace_id:"t2" ~client:"cli" ~route:"/x" () in
  Context.with_context c1 (fun () ->
      (match Context.current () with
      | Some c ->
        Alcotest.(check string) "c1 installed" "t1" (Context.trace_id c)
      | None -> Alcotest.fail "no context");
      Context.with_context c2 (fun () ->
          match Context.current () with
          | Some c ->
            Alcotest.(check string) "c2 nested" "t2" (Context.trace_id c);
            Alcotest.(check (option string))
              "client" (Some "cli") (Context.client c);
            Alcotest.(check (option string))
              "route" (Some "/x") (Context.route c)
          | None -> Alcotest.fail "no nested context");
      match Context.current () with
      | Some c ->
        Alcotest.(check string) "c1 restored" "t1" (Context.trace_id c)
      | None -> Alcotest.fail "outer context lost");
  Alcotest.(check bool) "uninstalled after" true (Context.current () = None)

let test_context_fields_timings () =
  let c = Context.make ~trace_id:"t" () in
  Context.with_context c (fun () ->
      Context.annotate "k" (Context.Int 1);
      Context.annotate "k" (Context.Int 2);
      Context.annotate "flag" (Context.Bool true);
      Context.add_timing "stage" 0.25;
      Context.add_timing "stage" 0.5;
      Context.set_session "s9");
  Alcotest.(check bool) "latest annotation wins" true
    (List.assoc "k" (Context.fields c) = Context.Int 2);
  Alcotest.(check bool) "bool field kept" true
    (List.assoc "flag" (Context.fields c) = Context.Bool true);
  Alcotest.(check (option string))
    "session joined" (Some "s9") (Context.session_id c);
  match Context.timings c with
  | [ ("stage", dt) ] -> Alcotest.(check (float 1e-9)) "timings sum" 0.75 dt
  | _ -> Alcotest.fail "expected one summed stage timing"

(* The context captured at submission is restored inside the worker
   domain: annotations made by the job land on the request's context,
   and the pool attributes the queue wait to it. *)
let test_context_across_pool () =
  let module Pool = Flames_engine.Pool in
  Pool.with_pool ~workers:2 (fun pool ->
      let c = Context.make ~trace_id:"pool-trace" () in
      let p =
        Context.with_context c (fun () ->
            Pool.submit pool (fun () ->
                Context.annotate "from_worker" (Context.Bool true);
                match Context.current () with
                | Some c -> Context.trace_id c
                | None -> "none"))
      in
      (match Pool.await p with
      | Ok id ->
        Alcotest.(check string) "context restored in worker domain"
          "pool-trace" id
      | Error _ -> Alcotest.fail "job failed");
      Alcotest.(check bool) "worker annotation lands on the request" true
        (List.assoc_opt "from_worker" (Context.fields c)
        = Some (Context.Bool true));
      Alcotest.(check bool) "queue wait attributed" true
        (List.mem_assoc "queue_wait_s" (Context.fields c)))

(* {1 Events} *)

let test_event_json_schema () =
  Events.clear ();
  let c =
    Context.make ~session_id:"s1" ~client:"cli" ~route:"/session/*/measure"
      ~trace_id:"abcd" ()
  in
  Context.with_context c (fun () ->
      Context.add_timing "solve" 0.002;
      Events.emit ~name:"http.request"
        [
          ("status", Events.Int 200);
          ("elapsed_ms", Events.Num 1.5);
          ("degraded", Events.Bool false);
          ("note", Events.Str "x\"y");
        ]);
  match Events.recent () with
  | [ e ] ->
    let json = Json.parse (Events.to_json e) in
    let str k =
      match Json.mem k json with
      | Some (Json.Str s) -> s
      | _ -> Alcotest.failf "missing string field %S" k
    in
    let num k =
      match Json.mem k json with
      | Some (Json.Num f) -> f
      | _ -> Alcotest.failf "missing numeric field %S" k
    in
    Alcotest.(check string) "event" "http.request" (str "event");
    Alcotest.(check string) "trace" "abcd" (str "trace");
    Alcotest.(check string) "session" "s1" (str "session");
    Alcotest.(check string) "client" "cli" (str "client");
    Alcotest.(check string) "route" "/session/*/measure" (str "route");
    Alcotest.(check (float 1e-9)) "status" 200. (num "status");
    Alcotest.(check (float 1e-9)) "elapsed_ms" 1.5 (num "elapsed_ms");
    Alcotest.(check string) "string escaping round-trips" "x\"y" (str "note");
    (match Json.mem "degraded" json with
    | Some (Json.Bool false) -> ()
    | _ -> Alcotest.fail "bool field");
    Alcotest.(check bool) "stage timing becomes a t_ field" true
      (num "t_solve" > 0.)
  | es -> Alcotest.failf "expected one event, got %d" (List.length es)

let test_event_ring () =
  Events.set_capacity 4;
  Fun.protect
    ~finally:(fun () -> Events.set_capacity 256)
    (fun () ->
      for i = 1 to 10 do
        Events.emit ~name:(Printf.sprintf "e%d" i) []
      done;
      let recents = Events.recent () in
      Alcotest.(check int) "bounded" 4 (List.length recents);
      Alcotest.(check (list string))
        "oldest first, newest kept"
        [ "e7"; "e8"; "e9"; "e10" ]
        (List.map (fun e -> e.Events.name) recents);
      let seqs = List.map (fun e -> e.Events.seq) recents in
      Alcotest.(check bool) "seq ascending" true
        (seqs = List.sort compare seqs);
      Events.set_enabled false;
      Events.emit ~name:"dropped" [];
      Events.set_enabled true;
      Alcotest.(check int) "disabled drops" 4
        (List.length (Events.recent ())))

(* Four domains interleave emissions: every event keeps its own fields
   (no tearing), the seq counter gives a total order, and nothing is
   lost. *)
let test_event_concurrent_domains () =
  Events.set_capacity 2048;
  Fun.protect ~finally:(fun () -> Events.set_capacity 256) @@ fun () ->
  let per = 250 in
  let worker d () =
    for i = 0 to per - 1 do
      Events.emit ~name:"evt" [ ("d", Events.Int d); ("i", Events.Int i) ]
    done
  in
  let domains = List.init 3 (fun d -> Domain.spawn (worker (d + 1))) in
  worker 0 ();
  List.iter Domain.join domains;
  let events = Events.recent () in
  Alcotest.(check int) "all events recorded" (4 * per) (List.length events);
  let seqs = List.map (fun e -> e.Events.seq) events in
  Alcotest.(check bool) "total order by distinct seq" true
    (seqs = List.sort_uniq compare seqs);
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun e ->
      match
        ( List.assoc_opt "d" e.Events.fields,
          List.assoc_opt "i" e.Events.fields )
      with
      | Some (Events.Int d), Some (Events.Int i) ->
        Alcotest.(check bool) "fields not torn" true
          (d >= 0 && d < 4 && i >= 0 && i < per);
        Hashtbl.replace seen (d, i) ()
      | _ -> Alcotest.fail "event lost its fields")
    events;
  Alcotest.(check int) "every (domain, step) pair exactly once" (4 * per)
    (Hashtbl.length seen);
  List.iter (fun e -> ignore (Json.parse (Events.to_json e))) events

let test_event_file_sink () =
  Events.clear ();
  let path = Filename.temp_file "flames_events" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let close = Events.file_sink path in
  Events.emit ~name:"one" [ ("k", Events.Int 1) ];
  Events.emit ~name:"two" [];
  close ();
  Events.emit ~name:"after-close" [];
  let lines =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one line per event, closed sink writes nothing" 2
    (List.length lines);
  List.iter (fun l -> ignore (Json.parse l)) lines

(* {1 Quantile digests} *)

let test_digest_buckets () =
  List.iter
    (fun v ->
      let i = Qdigest.bucket_index v in
      Alcotest.(check bool) "value under its bucket bound" true
        (v <= Qdigest.bucket_bound i);
      if i > 0 then
        Alcotest.(check bool) "previous bound below value" true
          (Qdigest.bucket_bound (i - 1) < v +. 1e-12))
    [ 1e-6; 1e-4; 0.001; 0.0123; 0.1; 0.25; 1.0; 10.; 99. ];
  Alcotest.(check bool) "overflow bucket is +inf" true
    (Qdigest.bucket_bound 63 = infinity)

let test_digest_quantiles () =
  let d = Qdigest.create ~slo:0.25 () in
  for _ = 1 to 99 do
    Qdigest.observe d 0.01
  done;
  Qdigest.observe d 5.0;
  Alcotest.(check int) "count" 100 (Qdigest.count d);
  Alcotest.(check (float 1e-6)) "sum" 5.99 (Qdigest.sum d);
  let q50 = Qdigest.quantile d 0.5 in
  Alcotest.(check bool) "p50 brackets the mode" true
    (q50 >= 0.01 && q50 < 0.02);
  Alcotest.(check bool) "p100 covers the max" true
    (Qdigest.quantile d 1.0 >= 5.0);
  Alcotest.(check int) "slo breaches" 1 (Qdigest.breaches d);
  Alcotest.(check (float 1e-9)) "empty digest quantile" 0.
    (Qdigest.quantile (Qdigest.create ()) 0.99)

let test_digest_export () =
  Qdigest.reset ();
  let fam =
    Qdigest.family ~slo:0.25 ~help:"route seconds" "obs_test_route_seconds"
  in
  Qdigest.observe_in fam "/session/*/measure" 0.01;
  Qdigest.observe_in fam "/session/*/measure" 0.5;
  Qdigest.observe_in fam "/diagnose" 0.02;
  let text = Format.asprintf "%t" Export.prometheus in
  Fun.protect ~finally:Qdigest.reset @@ fun () ->
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains text needle))
    [
      "# HELP obs_test_route_seconds route seconds";
      "# TYPE obs_test_route_seconds summary";
      "obs_test_route_seconds{route=\"/diagnose\",quantile=\"0.5\"}";
      "obs_test_route_seconds{route=\"/session/*/measure\",quantile=\"0.99\"}";
      "obs_test_route_seconds_count{route=\"/session/*/measure\"} 2";
      "obs_test_route_seconds_slo_breaches_total{route=\"/session/*/measure\"} \
       1";
    ]

(* {1 Exposition-format escaping} *)

let test_prometheus_escaping () =
  Metrics.reset ();
  Alcotest.(check string) "help_escape" {|a\\b\nc|} (Export.help_escape "a\\b\nc");
  Alcotest.(check string)
    "label_escape" {|a\"b\\c\nd|}
    (Export.label_escape "a\"b\\c\nd");
  let _c =
    Metrics.counter ~help:"line1\nline2 back\\slash" "obs_test_esc_total"
  in
  let text = Format.asprintf "%t" Export.prometheus in
  Alcotest.(check bool) "HELP escaped in exposition" true
    (contains text {|# HELP obs_test_esc_total line1\nline2 back\\slash|})

let test_prometheus_inf_count () =
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[ 0.1 ] "obs_test_inf_seconds" in
  List.iter (Metrics.observe h) [ 0.05; 0.2; 0.3 ];
  let text = Format.asprintf "%t" Export.prometheus in
  Alcotest.(check bool) "+Inf bucket equals _count" true
    (contains text "obs_test_inf_seconds_bucket{le=\"+Inf\"} 3"
    && contains text "obs_test_inf_seconds_count 3")

(* {1 Flight recorder} *)

let test_recorder_dump () =
  Events.clear ();
  Trace.reset ();
  Trace.start ();
  Trace.with_span "recorded.span" (fun () -> ());
  Trace.stop ();
  Events.emit ~name:"one" [ ("k", Events.Int 1) ];
  Events.emit ~name:"two" [];
  let json = Json.parse (Recorder.dump ()) in
  (match Json.mem "events" json with
  | Some (Json.Arr events) ->
    Alcotest.(check int) "both events dumped" 2 (List.length events);
    List.iter
      (fun e ->
        match Json.mem "event" e with
        | Some (Json.Str _) -> ()
        | _ -> Alcotest.fail "event without a name")
      events
  | _ -> Alcotest.fail "no events array");
  (match Json.mem "spans" json with
  | Some (Json.Arr spans) ->
    Alcotest.(check bool) "span tail present" true (spans <> []);
    List.iter
      (fun s ->
        match (Json.mem "name" s, Json.mem "ph" s) with
        | Some (Json.Str _), Some (Json.Str _) -> ()
        | _ -> Alcotest.fail "span shape")
      spans
  | _ -> Alcotest.fail "no spans array");
  let path = Filename.temp_file "flames_flight" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Recorder.write path;
      ignore (Json.parse (In_channel.with_open_bin path In_channel.input_all)))

(* {1 Log trace prefix} *)

let test_log_trace_prefix () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Log.set_formatter ppf;
  Fun.protect
    ~finally:(fun () -> Log.set_formatter Format.err_formatter)
    (fun () ->
      Log.warn "outside any request";
      let c = Context.make ~trace_id:"feedc0de00000000" () in
      Context.with_context c (fun () -> Log.warn "inside the request");
      Format.pp_print_flush ppf ();
      let out = Buffer.contents buf in
      Alcotest.(check bool) "trace prefix on in-context line" true
        (contains out "[trace=feedc0de00000000] ");
      let lines = String.split_on_char '\n' out in
      List.iter
        (fun line ->
          if contains line "outside any request" then
            Alcotest.(check bool) "no prefix outside a context" false
              (contains line "[trace="))
        lines)

(* {1 Engine stats JSON} *)

let test_stats_json () =
  let stats =
    {
      Flames_engine.Stats.jobs = 5;
      succeeded = 4;
      failed = 1;
      workers = 2;
      conflicts = 7;
      cache_hits = 4;
      cache_misses = 1;
      wall_time = 0.5;
      cpu_time = 0.75;
      retried = 0;
      shed = 0;
      degraded = 0;
      compile_wall = 0.125;
      diagnose_wall = 0.25;
    }
  in
  let json = Json.parse (Flames_engine.Stats.to_json stats) in
  let num k =
    match Json.mem k json with
    | Some (Json.Num f) -> f
    | _ -> Alcotest.failf "missing field %S" k
  in
  Alcotest.(check (float 1e-9)) "jobs" 5. (num "jobs");
  Alcotest.(check (float 1e-9)) "succeeded" 4. (num "succeeded");
  Alcotest.(check (float 1e-9)) "failed" 1. (num "failed");
  Alcotest.(check (float 1e-9)) "workers" 2. (num "workers");
  Alcotest.(check (float 1e-9)) "conflicts" 7. (num "conflicts");
  Alcotest.(check (float 1e-9)) "cache_hits" 4. (num "cache_hits");
  Alcotest.(check (float 1e-9)) "wall_s" 0.5 (num "wall_s");
  Alcotest.(check (float 1e-9)) "jobs_per_s" 10. (num "jobs_per_s");
  Alcotest.(check (float 1e-9)) "compile_s" 0.125 (num "compile_s");
  Alcotest.(check (float 1e-9)) "diagnose_s" 0.25 (num "diagnose_s")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "counter-domains" `Quick test_counter_domains;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "kind-mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram-buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram-time" `Quick test_histogram_time;
          Alcotest.test_case "snapshot" `Quick test_snapshot;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled-noop" `Quick test_disabled_noop;
          Alcotest.test_case "span-nesting" `Quick test_span_nesting;
          Alcotest.test_case "multi-domain-merge" `Quick
            test_multi_domain_merge;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome-trace-schema" `Quick
            test_chrome_trace_schema;
          Alcotest.test_case "prometheus" `Quick test_prometheus_export;
        ] );
      ( "ids",
        [
          Alcotest.test_case "deterministic" `Quick test_ids_deterministic;
          Alcotest.test_case "unique-across-domains" `Quick
            test_ids_unique_across_domains;
          Alcotest.test_case "valid" `Quick test_ids_valid;
        ] );
      ( "context",
        [
          Alcotest.test_case "nesting" `Quick test_context_nesting;
          Alcotest.test_case "fields-timings" `Quick
            test_context_fields_timings;
          Alcotest.test_case "across-pool" `Quick test_context_across_pool;
        ] );
      ( "events",
        [
          Alcotest.test_case "json-schema" `Quick test_event_json_schema;
          Alcotest.test_case "ring" `Quick test_event_ring;
          Alcotest.test_case "concurrent-domains" `Quick
            test_event_concurrent_domains;
          Alcotest.test_case "file-sink" `Quick test_event_file_sink;
        ] );
      ( "digest",
        [
          Alcotest.test_case "buckets" `Quick test_digest_buckets;
          Alcotest.test_case "quantiles" `Quick test_digest_quantiles;
          Alcotest.test_case "export" `Quick test_digest_export;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "escaping" `Quick test_prometheus_escaping;
          Alcotest.test_case "inf-equals-count" `Quick
            test_prometheus_inf_count;
        ] );
      ( "recorder",
        [ Alcotest.test_case "dump-schema" `Quick test_recorder_dump ] );
      ( "log-trace",
        [ Alcotest.test_case "prefix" `Quick test_log_trace_prefix ] );
      ("log", [ Alcotest.test_case "levels" `Quick test_log_levels ]);
      ( "stats-json",
        [ Alcotest.test_case "schema" `Quick test_stats_json ] );
    ]
