(* Tests for the verification subsystem itself (lib/check): the
   differential oracles against the production paths, the ATMS and
   diagnosis invariant auditors, and the determinism/shrinking contract
   of the generator layer. *)

module Gen = Flames_check.Gen
module Oracle = Flames_check.Oracle
module Invariant = Flames_check.Invariant
module Rng = Flames_check.Rng
module Env = Flames_atms.Env
module Atms = Flames_atms.Atms
module I = Flames_fuzzy.Interval

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let e = Env.of_list

let expect_pass name count g prop =
  match Gen.run ~seed:0xC0FFEE ~count g prop with
  | Gen.Pass n -> check_int name count n
  | Gen.Fail f ->
    Alcotest.failf "%s: %a" name (Gen.pp_failure g) f

(* {1 Hitting-set oracle (satellite: >= 500 random cases)} *)

let test_hitting_oracle_random () =
  expect_pass "hitting oracle" 500 Gen.conflict_sets Oracle.check_hitting

let test_hitting_directed_edges () =
  let ok name conflicts =
    match Oracle.check_hitting conflicts with
    | Ok () -> ()
    | Error m -> Alcotest.failf "%s: %s" name m
  in
  ok "no conflicts" [];
  ok "empty conflict alone" [ Env.empty ];
  ok "empty conflict among others" [ e [ 1; 2 ]; Env.empty; e [ 3 ] ];
  ok "exact duplicates" [ e [ 1; 2 ]; e [ 1; 2 ]; e [ 1; 2 ] ];
  ok "subset pair" [ e [ 1 ]; e [ 1; 2; 3 ] ];
  ok "disjoint conflicts" [ e [ 1; 2 ]; e [ 3; 4 ]; e [ 5; 6 ] ];
  ok "twelve assumptions, overlapping"
    [
      e [ 0; 1; 2; 3 ]; e [ 3; 4; 5; 6 ]; e [ 6; 7; 8; 9 ];
      e [ 9; 10; 11 ]; e [ 0; 11 ]; e [ 2; 5; 8 ];
    ];
  (* brute-force ground truth on a case small enough to read off *)
  Alcotest.(check int)
    "brute count" 2
    (List.length (Oracle.brute_hitting [ e [ 1; 2 ]; e [ 2; 3 ] ]));
  check_bool "brute contains {2}" true
    (List.exists (Env.equal (e [ 2 ])) (Oracle.brute_hitting [ e [ 1; 2 ]; e [ 2; 3 ] ]))

(* {1 Env bitset / Envindex oracles (satellite: >= 500 random cases)} *)

let test_env_oracle_random () =
  expect_pass "env bitset oracle" 500 Gen.id_lists Oracle.check_env

let test_envindex_oracle_random () =
  expect_pass "envindex oracle" 500 Gen.weighted_envs Oracle.check_envindex

let test_env_oracle_directed () =
  let ok name lists =
    match Oracle.check_env lists with
    | Ok () -> ()
    | Error m -> Alcotest.failf "%s: %s" name m
  in
  ok "empty" [ [] ];
  ok "word boundaries" [ [ 62 ]; [ 63 ]; [ 64 ]; [ 127 ]; [ 62; 63; 64; 127 ] ];
  ok "spanning words" [ [ 0; 63; 126 ]; [ 1; 64; 127 ]; [ 0; 1; 62; 65 ] ];
  ok "duplicates" [ [ 5; 5; 5 ]; [ 5 ] ];
  match
    Oracle.check_envindex
      [ ([ 1; 2 ], 0.5); ([ 1 ], 1.); ([ 1; 2; 3 ], 0.25); ([ 2 ], 0.5) ]
  with
  | Ok () -> ()
  | Error m -> Alcotest.failf "directed envindex: %s" m

(* {1 Arithmetic / consistency / MNA oracles} *)

let interval_pairs =
  {
    Gen.gen =
      (fun rng ->
        let a = Gen.interval.Gen.gen rng in
        let b = Gen.interval.Gen.gen rng in
        (a, b));
    shrink =
      (fun (a, b) ->
        List.map (fun a' -> (a', b)) (Gen.interval.Gen.shrink a)
        @ List.map (fun b' -> (a, b')) (Gen.interval.Gen.shrink b));
    print =
      (fun (a, b) ->
        Gen.interval.Gen.print a ^ "  |  " ^ Gen.interval.Gen.print b);
  }

let test_arith_oracle () =
  expect_pass "alpha-cut arith oracle" 300 interval_pairs Oracle.check_arith

let test_consistency_oracle () =
  expect_pass "grid Dc oracle" 300 interval_pairs Oracle.check_consistency

let test_mna_oracle () =
  expect_pass "dense MNA oracle" 200 Gen.ladder (fun l ->
      Oracle.check_mna (Gen.netlist_of_ladder l))

(* {1 ATMS label audit} *)

let test_atms_audit_random () =
  expect_pass "ATMS label laws" 200 Gen.atms_spec (fun spec ->
      Invariant.audit_atms (Gen.build_atms spec))

let test_atms_audit_debug_hook () =
  (* with the debug hook armed, every install self-checks *)
  let t = Atms.create () in
  Atms.set_debug t true;
  check_bool "debug armed" true (Atms.debug t);
  let a = Atms.assumption t "a" and b = Atms.assumption t "b" in
  let n = Atms.node t "n" in
  Atms.justify t ~degree:0.9 ~antecedents:[ a ] n;
  Atms.justify t ~degree:0.4 ~antecedents:[ b ] n;
  Atms.justify t ~degree:1.0 ~antecedents:[ n ] (Atms.contradiction t);
  check_int "no violations" 0 (List.length (Atms.audit t))

(* {1 Diagnosis invariants on random circuits} *)

let test_diagnosis_invariants () =
  expect_pass "diagnosis invariants" 25 Gen.scenario (fun sc ->
      let nominal, _ = Gen.scenario_netlists sc in
      Invariant.audit_result
        (Flames_core.Diagnose.run nominal (Gen.scenario_observations sc)))

(* {1 Batch determinism (satellite: 1/2/4 workers, cold and warm)} *)

let test_batch_determinism () =
  expect_pass "batch == sequential" 2
    {
      Gen.gen =
        (fun rng -> List.init 3 (fun _ -> Gen.scenario.Gen.gen rng));
      shrink = (fun _ -> []);
      print =
        (fun scs -> String.concat "\n--\n" (List.map Gen.scenario.Gen.print scs));
    }
    (fun scs ->
      let jobs =
        List.mapi
          (fun i sc ->
            let nominal, _ = Gen.scenario_netlists sc in
            Flames_engine.Batch.job
              ~label:(Printf.sprintf "job%d" i)
              nominal
              (Gen.scenario_observations sc))
          scs
      in
      Oracle.check_batch ~workers:[ 1; 2; 4 ] jobs)

(* {1 Generator layer: determinism, replay, shrinking} *)

let test_gen_determinism () =
  let draw seed =
    let rng = Rng.make (Rng.case_seed ~seed ~case:7) in
    Gen.scenario.Gen.print (Gen.scenario.Gen.gen rng)
  in
  check_string "same seed, same scenario" (draw 42) (draw 42);
  check_bool "different seed, different scenario" true (draw 42 <> draw 43)

let test_gen_shrinking () =
  (* a property that rejects any conflict set with >= 2 conflicts must
     shrink to exactly 2, and the failure must replay bit-identically *)
  let prop cs =
    if List.length cs >= 2 then Error "too many conflicts" else Ok ()
  in
  let run () =
    match Gen.run ~seed:11 ~count:200 Gen.conflict_sets prop with
    | Gen.Pass _ -> Alcotest.fail "property unexpectedly passed"
    | Gen.Fail f -> f
  in
  let f = run () and f' = run () in
  check_int "shrunk to the boundary" 2 (List.length f.Gen.shrunk);
  check_int "replay: same case" f.Gen.case f'.Gen.case;
  check_string "replay: same counterexample"
    (Gen.conflict_sets.Gen.print f.Gen.shrunk)
    (Gen.conflict_sets.Gen.print f'.Gen.shrunk);
  check_bool "reports the message" true (f.Gen.message = "too many conflicts")

let test_gen_well_formed () =
  (* every generated and every shrunk scenario must build a valid netlist *)
  expect_pass "netlists well-formed" 100 Gen.scenario (fun sc ->
      let nominal, faulty = Gen.scenario_netlists sc in
      let solvable n =
        match Flames_sim.Mna.solve n with
        | _ -> Ok ()
        | exception ex -> Error (Printexc.to_string ex)
      in
      Result.bind (solvable nominal) (fun () -> solvable faulty))

let () =
  Alcotest.run "check"
    [
      ( "hitting-oracle",
        [
          Alcotest.test_case "random-500" `Slow test_hitting_oracle_random;
          Alcotest.test_case "directed-edges" `Quick test_hitting_directed_edges;
        ] );
      ( "env-oracle",
        [
          Alcotest.test_case "bitset-random-500" `Slow test_env_oracle_random;
          Alcotest.test_case "envindex-random-500" `Slow
            test_envindex_oracle_random;
          Alcotest.test_case "directed-edges" `Quick test_env_oracle_directed;
        ] );
      ( "fuzzy-oracles",
        [
          Alcotest.test_case "arith" `Slow test_arith_oracle;
          Alcotest.test_case "consistency" `Slow test_consistency_oracle;
        ] );
      ("mna-oracle", [ Alcotest.test_case "dense-solve" `Slow test_mna_oracle ]);
      ( "atms-audit",
        [
          Alcotest.test_case "random-networks" `Slow test_atms_audit_random;
          Alcotest.test_case "debug-hook" `Quick test_atms_audit_debug_hook;
        ] );
      ( "diagnosis",
        [ Alcotest.test_case "invariants" `Slow test_diagnosis_invariants ] );
      ( "engine",
        [ Alcotest.test_case "batch-determinism" `Slow test_batch_determinism ]
      );
      ( "generator",
        [
          Alcotest.test_case "determinism" `Quick test_gen_determinism;
          Alcotest.test_case "shrinking" `Quick test_gen_shrinking;
          Alcotest.test_case "well-formed" `Slow test_gen_well_formed;
        ] );
    ]
