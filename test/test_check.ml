(* Tests for the verification subsystem itself (lib/check): the
   differential oracles against the production paths, the ATMS and
   diagnosis invariant auditors, and the determinism/shrinking contract
   of the generator layer. *)

module Gen = Flames_check.Gen
module Oracle = Flames_check.Oracle
module Invariant = Flames_check.Invariant
module Rng = Flames_check.Rng
module Env = Flames_atms.Env
module Atms = Flames_atms.Atms
module I = Flames_fuzzy.Interval

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let e = Env.of_list

let expect_pass name count g prop =
  match Gen.run ~seed:0xC0FFEE ~count g prop with
  | Gen.Pass n -> check_int name count n
  | Gen.Fail f ->
    Alcotest.failf "%s: %a" name (Gen.pp_failure g) f

(* {1 Hitting-set oracle (satellite: >= 500 random cases)} *)

let test_hitting_oracle_random () =
  expect_pass "hitting oracle" 500 Gen.conflict_sets Oracle.check_hitting

let test_hitting_directed_edges () =
  let ok name conflicts =
    match Oracle.check_hitting conflicts with
    | Ok () -> ()
    | Error m -> Alcotest.failf "%s: %s" name m
  in
  ok "no conflicts" [];
  ok "empty conflict alone" [ Env.empty ];
  ok "empty conflict among others" [ e [ 1; 2 ]; Env.empty; e [ 3 ] ];
  ok "exact duplicates" [ e [ 1; 2 ]; e [ 1; 2 ]; e [ 1; 2 ] ];
  ok "subset pair" [ e [ 1 ]; e [ 1; 2; 3 ] ];
  ok "disjoint conflicts" [ e [ 1; 2 ]; e [ 3; 4 ]; e [ 5; 6 ] ];
  ok "twelve assumptions, overlapping"
    [
      e [ 0; 1; 2; 3 ]; e [ 3; 4; 5; 6 ]; e [ 6; 7; 8; 9 ];
      e [ 9; 10; 11 ]; e [ 0; 11 ]; e [ 2; 5; 8 ];
    ];
  (* brute-force ground truth on a case small enough to read off *)
  Alcotest.(check int)
    "brute count" 2
    (List.length (Oracle.brute_hitting [ e [ 1; 2 ]; e [ 2; 3 ] ]));
  check_bool "brute contains {2}" true
    (List.exists (Env.equal (e [ 2 ])) (Oracle.brute_hitting [ e [ 1; 2 ]; e [ 2; 3 ] ]))

(* {1 Env bitset / Envindex oracles (satellite: >= 500 random cases)} *)

let test_env_oracle_random () =
  expect_pass "env bitset oracle" 500 Gen.id_lists Oracle.check_env

let test_envindex_oracle_random () =
  expect_pass "envindex oracle" 500 Gen.weighted_envs Oracle.check_envindex

let test_env_oracle_directed () =
  let ok name lists =
    match Oracle.check_env lists with
    | Ok () -> ()
    | Error m -> Alcotest.failf "%s: %s" name m
  in
  ok "empty" [ [] ];
  ok "word boundaries" [ [ 62 ]; [ 63 ]; [ 64 ]; [ 127 ]; [ 62; 63; 64; 127 ] ];
  ok "spanning words" [ [ 0; 63; 126 ]; [ 1; 64; 127 ]; [ 0; 1; 62; 65 ] ];
  ok "duplicates" [ [ 5; 5; 5 ]; [ 5 ] ];
  match
    Oracle.check_envindex
      [ ([ 1; 2 ], 0.5); ([ 1 ], 1.); ([ 1; 2; 3 ], 0.25); ([ 2 ], 0.5) ]
  with
  | Ok () -> ()
  | Error m -> Alcotest.failf "directed envindex: %s" m

(* {1 Arithmetic / consistency / MNA oracles} *)

let interval_pairs =
  {
    Gen.gen =
      (fun rng ->
        let a = Gen.interval.Gen.gen rng in
        let b = Gen.interval.Gen.gen rng in
        (a, b));
    shrink =
      (fun (a, b) ->
        List.map (fun a' -> (a', b)) (Gen.interval.Gen.shrink a)
        @ List.map (fun b' -> (a, b')) (Gen.interval.Gen.shrink b));
    print =
      (fun (a, b) ->
        Gen.interval.Gen.print a ^ "  |  " ^ Gen.interval.Gen.print b);
  }

let test_arith_oracle () =
  expect_pass "alpha-cut arith oracle" 300 interval_pairs Oracle.check_arith

let test_consistency_oracle () =
  expect_pass "grid Dc oracle" 300 interval_pairs Oracle.check_consistency

let test_mna_oracle () =
  expect_pass "dense MNA oracle" 200 Gen.ladder (fun l ->
      Oracle.check_mna (Gen.netlist_of_ladder l))

(* {1 ATMS label audit} *)

let test_atms_audit_random () =
  expect_pass "ATMS label laws" 200 Gen.atms_spec (fun spec ->
      Invariant.audit_atms (Gen.build_atms spec))

let test_atms_audit_debug_hook () =
  (* with the debug hook armed, every install self-checks *)
  let t = Atms.create () in
  Atms.set_debug t true;
  check_bool "debug armed" true (Atms.debug t);
  let a = Atms.assumption t "a" and b = Atms.assumption t "b" in
  let n = Atms.node t "n" in
  Atms.justify t ~degree:0.9 ~antecedents:[ a ] n;
  Atms.justify t ~degree:0.4 ~antecedents:[ b ] n;
  Atms.justify t ~degree:1.0 ~antecedents:[ n ] (Atms.contradiction t);
  check_int "no violations" 0 (List.length (Atms.audit t))

(* {1 Diagnosis invariants on random circuits} *)

let test_diagnosis_invariants () =
  expect_pass "diagnosis invariants" 25 Gen.scenario (fun sc ->
      let nominal, _ = Gen.scenario_netlists sc in
      Invariant.audit_result
        (Flames_core.Diagnose.run nominal (Gen.scenario_observations sc)))

(* {1 Batch determinism (satellite: 1/2/4 workers, cold and warm)} *)

let test_batch_determinism () =
  expect_pass "batch == sequential" 2
    {
      Gen.gen =
        (fun rng -> List.init 3 (fun _ -> Gen.scenario.Gen.gen rng));
      shrink = (fun _ -> []);
      print =
        (fun scs -> String.concat "\n--\n" (List.map Gen.scenario.Gen.print scs));
    }
    (fun scs ->
      let jobs =
        List.mapi
          (fun i sc ->
            let nominal, _ = Gen.scenario_netlists sc in
            Flames_engine.Batch.job
              ~label:(Printf.sprintf "job%d" i)
              nominal
              (Gen.scenario_observations sc))
          scs
      in
      Oracle.check_batch ~workers:[ 1; 2; 4 ] jobs)

(* {1 Generator layer: determinism, replay, shrinking} *)

let test_gen_determinism () =
  let draw seed =
    let rng = Rng.make (Rng.case_seed ~seed ~case:7) in
    Gen.scenario.Gen.print (Gen.scenario.Gen.gen rng)
  in
  check_string "same seed, same scenario" (draw 42) (draw 42);
  check_bool "different seed, different scenario" true (draw 42 <> draw 43)

let test_gen_shrinking () =
  (* a property that rejects any conflict set with >= 2 conflicts must
     shrink to exactly 2, and the failure must replay bit-identically *)
  let prop cs =
    if List.length cs >= 2 then Error "too many conflicts" else Ok ()
  in
  let run () =
    match Gen.run ~seed:11 ~count:200 Gen.conflict_sets prop with
    | Gen.Pass _ -> Alcotest.fail "property unexpectedly passed"
    | Gen.Fail f -> f
  in
  let f = run () and f' = run () in
  check_int "shrunk to the boundary" 2 (List.length f.Gen.shrunk);
  check_int "replay: same case" f.Gen.case f'.Gen.case;
  check_string "replay: same counterexample"
    (Gen.conflict_sets.Gen.print f.Gen.shrunk)
    (Gen.conflict_sets.Gen.print f'.Gen.shrunk);
  check_bool "reports the message" true (f.Gen.message = "too many conflicts")

let test_gen_well_formed () =
  (* every generated and every shrunk scenario must build a valid netlist *)
  expect_pass "netlists well-formed" 100 Gen.scenario (fun sc ->
      let nominal, faulty = Gen.scenario_netlists sc in
      let solvable n =
        match Flames_sim.Mna.solve n with
        | _ -> Ok ()
        | exception ex -> Error (Printexc.to_string ex)
      in
      Result.bind (solvable nominal) (fun () -> solvable faulty))

(* {1 Resilience: chaos harness, degraded oracle, budget check-points} *)

module Chaos = Flames_check.Chaos
module Budget = Flames_core.Budget
module Hitting = Flames_atms.Hitting
module Diagnose = Flames_core.Diagnose
module Propagate = Flames_core.Propagate
module Model = Flames_core.Model

(* Satellite: >= 300 seeded chaos cases.  Each case is a complete
   chaotic batch — pool supervision, retry with backoff, circuit
   breaker, candidate budget — over a small job count, with every
   invariant of [Chaos.check] asserted.  A failure message carries the
   seed, which replays the case deterministically. *)
let test_chaos_property () =
  let config =
    { Chaos.default with jobs = 3; workers = 2; retries = 2; p_delay = 0.05 }
  in
  for case = 0 to 299 do
    let seed = Rng.case_seed ~seed:0x5EED5 ~case in
    match Chaos.check ~config seed with
    | Ok () -> ()
    | Error m -> Alcotest.failf "chaos case %d (seed %d): %s" case seed m
  done

let test_chaos_default () =
  match Chaos.run () with
  | Error m -> Alcotest.failf "default chaos run: %s" m
  | Ok r ->
    check_int "cases" Chaos.default.Chaos.jobs r.Chaos.cases;
    (* exercise the report printer *)
    check_bool "report renders" true
      (String.length (Format.asprintf "%a" Chaos.pp_report r) > 0)

let test_chaos_wall_budget () =
  (* a wall budget instead of a candidate quota: Timed_out/Cancelled
     become admissible outcomes and the subset oracle is (correctly)
     skipped — see invariant 4 *)
  let config =
    {
      Chaos.default with
      jobs = 6;
      budget_candidates = None;
      budget_wall = Some 0.01;
      retries = 1;
    }
  in
  match Chaos.run ~config () with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "wall-budget chaos: %s" m

(* Satellite: mid-session fault injection — each case replays a random
   session script with a fault point that raises between steps, then
   asserts the transactional/soundness invariants of
   [Chaos.check_session]. *)
let test_chaos_session () =
  for case = 0 to 99 do
    let seed = Rng.case_seed ~seed:0x5E551 ~case in
    match Chaos.check_session seed with
    | Ok () -> ()
    | Error m -> Alcotest.failf "session chaos case %d (seed %d): %s" case seed m
  done

let test_degraded_oracle () =
  expect_pass "degraded oracle" 60 Gen.scenario Oracle.check_degraded

(* Satellite: the compiled-schedule differential oracle — >= 300 seeded
   scenarios, each diagnosed through the compiled schedule and the
   interpreter (full, schedule-reuse and budget-tripped variants) and
   required to agree hex-fingerprint-exactly. *)
let test_compiled_oracle () =
  expect_pass "compiled vs interpreter" 300 Gen.scenario Oracle.check_compiled

let test_budget_charges () =
  let b = Budget.start (Budget.spec ~max_steps:3 ()) in
  check_bool "ok before" true (Budget.ok b);
  check_bool "charge within quota" true (Budget.charge_steps b 2);
  check_bool "charge trips" false (Budget.charge_steps b 2);
  check_bool "tripped" true (Budget.tripped b);
  check_bool "trip recorded" true (List.mem Budget.Steps (Budget.trips b));
  check_bool "interrupt fires" true (Budget.interrupt_of b ());
  let c = Budget.fresh () in
  check_bool "fresh is unlimited" true (Budget.charge_steps c 1_000_000);
  Budget.cancel c;
  check_bool "cancelled not ok" false (Budget.ok c);
  check_bool "cancel trip" true (List.mem Budget.Cancel (Budget.trips c))

let test_hitting_interrupt_floor () =
  let conflicts = [ e [ 1; 2 ]; e [ 2; 3 ]; e [ 4 ] ] in
  let full = Hitting.minimal_hitting_sets conflicts in
  (* an interrupt that is already tripped when enumeration starts: the
     >= 1 candidate floor must still yield a genuine minimal hitting
     set, and the truncation must be reported *)
  let sets, truncated =
    Hitting.enumerate ~interrupt:(fun () -> true) conflicts
  in
  check_bool "truncated" true truncated;
  check_bool "candidate floor" true (List.length sets >= 1);
  List.iter
    (fun s ->
      check_bool "sound: member of full enumeration" true
        (List.exists (Env.equal s) full);
      check_bool "hits every conflict" true (Hitting.hits_all s conflicts))
    sets;
  (* the floor does not invent candidates when none exist *)
  let sets, _ = Hitting.enumerate ~interrupt:(fun () -> true) [ Env.empty ] in
  check_int "no hitting set" 0 (List.length sets)

(* {1 Incremental sessions (satellite: >= 300 differential cases)} *)

module Session = Flames_session.Session

(* Every case replays a random add/retract/refine script through a live
   session and requires the diagnosis after each step to be
   hex-fingerprint-identical to a from-scratch [Diagnose.run] over the
   same measurement multiset — including scripts that retract down to an
   empty session and re-measure. *)
let test_session_oracle_random () =
  expect_pass "session equivalence" 300 Gen.session_script
    Oracle.check_session

let test_session_oracle_retractions () =
  (* biased variant: force retraction/refinement coverage by appending a
     retract and a refine to every generated script *)
  let biased =
    {
      Gen.session_script with
      Gen.gen =
        (fun rng ->
          let s = Gen.session_script.Gen.gen rng in
          {
            s with
            Gen.ops = s.Gen.ops @ [ Gen.S_retract 0; Gen.S_add 0; Gen.S_refine 1 ];
          });
    }
  in
  expect_pass "session retraction equivalence" 60 biased Oracle.check_session

let test_session_retract_readd_roundtrip () =
  (* retracting a measurement and re-adding the same interval must land
     on a diagnosis fingerprint-identical to never having retracted *)
  let r = Rng.make (Rng.case_seed ~seed:0x5E55 ~case:1) in
  let sc = Gen.scenario.Gen.gen r in
  let nominal, _ = Gen.scenario_netlists sc in
  let obs = Gen.scenario_observations sc in
  match obs with
  | [] -> Alcotest.fail "scenario produced no observations"
  | (q0, v0) :: rest ->
    let straight = Session.create nominal in
    List.iter
      (fun (q, v) -> ignore (Session.add_measurement straight q v))
      (obs : (_ * _) list);
    let detour = Session.create nominal in
    let m0 = Session.add_measurement detour q0 v0 in
    List.iter (fun (q, v) -> ignore (Session.add_measurement detour q v)) rest;
    check_bool "retract live id" true (Session.retract detour ~id:m0.Session.id);
    ignore (Session.add_measurement detour q0 v0);
    (* same multiset, different insertion order: compare against the
       reference over each session's own list *)
    let fingerprint s =
      Oracle.result_fingerprint (Session.diagnoses s)
    and reference s =
      Oracle.result_fingerprint
        (Diagnose.run ~model:(Session.model s) nominal
           (List.map
              (fun (m : Session.measurement) ->
                (m.Session.quantity, m.Session.interval))
              (Session.measurements s)))
    in
    check_string "straight session == scratch" (reference straight)
      (fingerprint straight);
    check_string "detour session == scratch" (reference detour)
      (fingerprint detour)

let test_propagate_step_budget () =
  let r = Rng.make (Rng.case_seed ~seed:0xB4D6E7 ~case:0) in
  let scenario = Gen.scenario.Gen.gen r in
  let _, faulty = Gen.scenario_netlists scenario in
  let obs = Gen.scenario_observations scenario in
  let model = Model.compile faulty in
  let budget = Budget.start (Budget.spec ~max_steps:1 ()) in
  let p = Propagate.create ~budget model in
  List.iter (fun (q, v) -> Propagate.observe p q v) obs;
  Propagate.run p;
  check_bool "truncated after one step" true (Propagate.truncated p);
  check_bool "steps trip recorded" true
    (List.mem Budget.Steps (Budget.trips budget));
  (* the same quota through the diagnosis front door: flagged degraded *)
  let budget = Budget.start (Budget.spec ~max_steps:1 ()) in
  let res = Diagnose.run ~budget faulty obs in
  check_bool "diagnosis degraded" true res.Diagnose.degraded;
  check_bool "diagnosis trips" true
    (List.mem Budget.Steps res.Diagnose.trips)

let () =
  Alcotest.run "check"
    [
      ( "hitting-oracle",
        [
          Alcotest.test_case "random-500" `Slow test_hitting_oracle_random;
          Alcotest.test_case "directed-edges" `Quick test_hitting_directed_edges;
        ] );
      ( "env-oracle",
        [
          Alcotest.test_case "bitset-random-500" `Slow test_env_oracle_random;
          Alcotest.test_case "envindex-random-500" `Slow
            test_envindex_oracle_random;
          Alcotest.test_case "directed-edges" `Quick test_env_oracle_directed;
        ] );
      ( "fuzzy-oracles",
        [
          Alcotest.test_case "arith" `Slow test_arith_oracle;
          Alcotest.test_case "consistency" `Slow test_consistency_oracle;
        ] );
      ("mna-oracle", [ Alcotest.test_case "dense-solve" `Slow test_mna_oracle ]);
      ( "atms-audit",
        [
          Alcotest.test_case "random-networks" `Slow test_atms_audit_random;
          Alcotest.test_case "debug-hook" `Quick test_atms_audit_debug_hook;
        ] );
      ( "diagnosis",
        [ Alcotest.test_case "invariants" `Slow test_diagnosis_invariants ] );
      ( "engine",
        [ Alcotest.test_case "batch-determinism" `Slow test_batch_determinism ]
      );
      ( "generator",
        [
          Alcotest.test_case "determinism" `Quick test_gen_determinism;
          Alcotest.test_case "shrinking" `Quick test_gen_shrinking;
          Alcotest.test_case "well-formed" `Slow test_gen_well_formed;
        ] );
      ( "session-oracle",
        [
          Alcotest.test_case "random-300" `Slow test_session_oracle_random;
          Alcotest.test_case "retraction-biased" `Slow
            test_session_oracle_retractions;
          Alcotest.test_case "retract-readd-roundtrip" `Quick
            test_session_retract_readd_roundtrip;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "chaos-property-300" `Slow test_chaos_property;
          Alcotest.test_case "chaos-default" `Slow test_chaos_default;
          Alcotest.test_case "chaos-wall-budget" `Slow test_chaos_wall_budget;
          Alcotest.test_case "chaos-session-100" `Slow test_chaos_session;
          Alcotest.test_case "degraded-oracle" `Slow test_degraded_oracle;
          Alcotest.test_case "compiled-oracle-300" `Slow test_compiled_oracle;
          Alcotest.test_case "budget-charges" `Quick test_budget_charges;
          Alcotest.test_case "hitting-interrupt-floor" `Quick
            test_hitting_interrupt_floor;
          Alcotest.test_case "propagate-step-budget" `Quick
            test_propagate_step_budget;
        ] );
    ]
